(* The daemon.  The calling domain owns the accept loop; every accepted
   connection runs as a session in its own domain, and all sessions share
   one resident engine — so the verdict cache, the interned fingerprints,
   the worker pool, and the optional persistent store stay warm across
   requests, and identical concurrent requests coalesce in the cache's
   single-flight layer instead of computing twice.

   Shutdown discipline: SIGTERM/SIGINT only flip an atomic; the accept
   loop and the session read loops poll it on a short select timeout, so
   every in-flight request is answered, every session domain is joined,
   and the engine and store are closed in order.  No lock is ever held
   across a blocking operation (join, select, engine work). *)

type config = {
  socket_path : string;
  jobs : int;
  store_dir : string option;
  resume : bool;
  max_sessions : int;
  engine_config : Engine.config;
}

let default_max_sessions = 16

(* Session read loops and the accept loop wake at this period to notice
   the stop flag; drain latency is bounded by it. *)
let poll_interval = 0.25

(* Backstop for a peer that dies mid-frame without resetting the
   connection: the kernel read times out and the session closes. *)
let io_timeout = 10.0

(* After stop is requested, each session keeps its connection open for one
   more window: a health probe arriving in it is answered (with
   [draining = true]), any other op gets a typed refusal, and then the
   session closes — so a drain is visible to clients as state, not as a
   silent hangup, while staying bounded at one answer per connection. *)
let drain_grace = poll_interval

let net = Flm_error.net
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- session registry ----------------------------------------------------

   Sessions are domains; domains must be joined.  A session that finishes
   pushes its id onto [done_ids]; the accept loop reaps (joins) finished
   handles between accepts, and [drain] waits for [live] to reach zero.
   Handles are looked up under the lock but joined outside it. *)

type registry = {
  lock : Mutex.t;
  drained : Condition.t;
  handles : (int, unit Domain.t) Hashtbl.t;
  mutable done_ids : int list;
  mutable live : int;
  mutable next_id : int;
}

let registry_create () =
  {
    lock = Mutex.create ();
    drained = Condition.create ();
    handles = Hashtbl.create 32;
    done_ids = [];
    live = 0;
    next_id = 0;
  }

let with_lock reg f =
  Mutex.lock reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.lock) f

let live_sessions reg = with_lock reg (fun () -> reg.live)

let session_done reg id =
  with_lock reg (fun () ->
      reg.live <- reg.live - 1;
      reg.done_ids <- id :: reg.done_ids;
      Condition.broadcast reg.drained)

(* A done id whose handle is not registered yet (the spawner has not run
   [Hashtbl.add]) stays queued for the next reap. *)
let reap reg =
  let handles =
    with_lock reg (fun () ->
        let pending, found =
          List.partition_map
            (fun id ->
              match Hashtbl.find_opt reg.handles id with
              | Some h ->
                Hashtbl.remove reg.handles id;
                Either.Right h
              | None -> Either.Left id)
            reg.done_ids
        in
        reg.done_ids <- pending;
        found)
  in
  List.iter Domain.join handles

let spawn_session reg session =
  let id =
    with_lock reg (fun () ->
        let id = reg.next_id in
        reg.next_id <- id + 1;
        reg.live <- reg.live + 1;
        id)
  in
  let handle =
    Domain.spawn (fun () ->
        Fun.protect ~finally:(fun () -> session_done reg id) (fun () ->
            session id))
  in
  with_lock reg (fun () -> Hashtbl.add reg.handles id handle)

let drain reg =
  with_lock reg (fun () ->
      while reg.live > 0 do
        Condition.wait reg.drained reg.lock
      done);
  reap reg

(* --- request handling ----------------------------------------------------- *)

type server = {
  cfg : config;
  engine : Engine.t;
  metrics : Serve_metrics.t;
  stop : bool Atomic.t;
  sessions : unit -> int;  (** live session count, for health answers *)
  log : string -> unit;
}

let verdict_json v =
  Serve_proto.Verdict.to_json (Serve_proto.Verdict.of_job_verdict v)

(* Install the per-request deadline around work run in this session's
   domain.  The engine's supervision nests its own configured deadline
   inside (the tighter wins) and classifies the timeout, so [f] returns
   the error instead of raising; the exception branch is a backstop for
   work outside a supervised region. *)
let with_request_deadline ~label timeout_ms f =
  match timeout_ms with
  | None -> f ()
  | Some ms -> (
    match Flm_error.Deadline.with_deadline ~job:label ~timeout_ms:ms f with
    | v -> v
    | exception Flm_error.Error e -> Error e)

let stats_json server =
  let s : Serve_metrics.snapshot = Serve_metrics.snapshot server.metrics in
  let m : Metrics.snapshot = Metrics.snapshot (Engine.metrics server.engine) in
  Bench_json.Obj
    [ ( "server",
        Bench_json.Obj
          [ "requests", Bench_json.Int s.requests;
            "ok", Bench_json.Int s.ok;
            "failed", Bench_json.Int s.failed;
            "malformed", Bench_json.Int s.malformed;
            "rejected_overload", Bench_json.Int s.rejected_overload;
            "latency_count", Bench_json.Int s.latency_count;
            "p50_ms", Bench_json.Float s.p50_ms;
            "p99_ms", Bench_json.Float s.p99_ms;
            "max_ms", Bench_json.Float s.max_ms;
          ] );
      ( "engine",
        Bench_json.Obj
          [ "jobs", Bench_json.Int (Engine.jobs server.engine);
            "jobs_completed", Bench_json.Int m.jobs_completed;
            "jobs_failed", Bench_json.Int m.jobs_failed;
            "cache_hits", Bench_json.Int m.cache_hits;
            "cache_misses", Bench_json.Int m.cache_misses;
            "coalesced", Bench_json.Int m.dedups;
            "evictions", Bench_json.Int m.evictions;
            "resumed", Bench_json.Int m.resumed;
            "recomputed", Bench_json.Int m.recomputed;
            "store_writes", Bench_json.Int m.store_writes;
            "executions_run", Bench_json.Int m.executions_run;
          ] );
    ]

let store_stat_response server =
  match Engine.store server.engine with
  | None ->
    Serve_proto.Response.Failed
      (Flm_error.Invalid_input
         {
           what = "store";
           detail = "the daemon is running without --store; nothing to stat";
         })
  | Some st ->
    let s = Store.stat st in
    Serve_proto.Response.Result
      (Bench_json.Obj
         [ "path", Bench_json.String s.Store.path;
           "live", Bench_json.Int s.Store.live;
           "records", Bench_json.Int s.Store.records;
           "corrupt", Bench_json.Int s.Store.corrupt;
           "bytes", Bench_json.Int s.Store.bytes;
         ])

(* Health answers read counters only — never engine queues — so they stay
   cheap while every session is busy, and truthful while draining. *)
let ping_response server ~draining =
  let s : Serve_metrics.snapshot = Serve_metrics.snapshot server.metrics in
  Serve_proto.Response.Result
    (Serve_proto.Ping.to_json
       {
         Serve_proto.Ping.draining;
         sessions = server.sessions ();
         max_sessions = server.cfg.max_sessions;
         requests = s.requests;
         ok = s.ok;
         failed = s.failed;
         jobs = Engine.jobs server.engine;
         store_attached = Engine.store server.engine <> None;
       })

let handle_op server (req : Serve_proto.Request.t) =
  match req.Serve_proto.Request.op with
  | Serve_proto.Request.Certify { problem; n; f } -> (
    let job = Job.Certify { problem; n; f } in
    match
      with_request_deadline ~label:(Job.label job)
        req.Serve_proto.Request.timeout_ms (fun () ->
          Engine.run_job_result server.engine job)
    with
    | Ok v -> Serve_proto.Response.Result (verdict_json v)
    | Error e -> Serve_proto.Response.Failed e)
  | Serve_proto.Request.Chaos { family; f; seed; strategy; trials } -> (
    match
      with_request_deadline ~label:"chaos" req.Serve_proto.Request.timeout_ms
        (fun () ->
          Ok (Engine.chaos server.engine ~family ~f ~seed ~strategy ~trials))
    with
    | Error e -> Serve_proto.Response.Failed e
    | Ok slots ->
      Serve_proto.Response.Result
        (Bench_json.List
           (List.map
              (fun slot ->
                Serve_proto.Slot.to_json
                  (Result.map (fun o -> Serve_proto.Verdict.Chaos o) slot))
              slots)))
  | Serve_proto.Request.Sweep { n_max; f_max } -> (
    match
      with_request_deadline ~label:"sweep" req.Serve_proto.Request.timeout_ms
        (fun () ->
          Flm_error.guard ~what:"sweep" (fun () ->
              Engine.nf_boundary server.engine ~n_max ~f_max))
    with
    | Ok cells ->
      Serve_proto.Response.Result
        (Bench_json.List (List.map (fun c -> verdict_json (Job.Cell c)) cells))
    | Error e -> Serve_proto.Response.Failed e)
  | Serve_proto.Request.Store_stat -> store_stat_response server
  | Serve_proto.Request.Stats ->
    Serve_proto.Response.Result (stats_json server)
  | Serve_proto.Request.Ping ->
    ping_response server ~draining:(Atomic.get server.stop)

(* --- sessions ------------------------------------------------------------- *)

let handle_connection server fd id =
  let endpoint = Printf.sprintf "%s#%d" server.cfg.socket_path id in
  let respond resp =
    Serve_proto.write_frame ~endpoint fd
      (Bench_json.to_string (Serve_proto.Response.to_json resp))
  in
  (* Framing errors close the connection (the peer is not speaking the
     protocol); document errors are answered and the connection lives.
     [answer_frame] consumes one readable frame; [~draining] routes every
     op except a health probe to a typed refusal. *)
  let answer_frame ~draining =
    match Serve_proto.read_frame ~endpoint fd with
    | Ok Serve_proto.Eof -> `Close
    | Error e ->
      Serve_metrics.record_malformed server.metrics;
      let (_ : (unit, Flm_error.t) result) =
        respond (Serve_proto.Response.Failed e)
      in
      `Close
    | Ok (Serve_proto.Frame payload) -> (
      let t0 = Metrics.wall_now () in
      let parsed =
        match Bench_json.parse payload with
        | Error e -> Error ("malformed request document: " ^ e)
        | Ok doc -> Serve_proto.Request.of_json doc
      in
      match parsed with
      | Error detail -> (
        Serve_metrics.record_malformed server.metrics;
        match respond (Serve_proto.Response.Failed (net ~endpoint detail)) with
        | Ok () -> if draining then `Close else `Continue
        | Error _ -> `Close)
      | Ok req -> (
        Serve_metrics.record_request server.metrics;
        let resp =
          match req.Serve_proto.Request.op with
          | Serve_proto.Request.Ping -> ping_response server ~draining
          | _ when draining ->
            Serve_proto.Response.Failed
              (net ~endpoint
                 (Printf.sprintf
                    "server draining; %s refused — reconnect after restart"
                    (Serve_proto.Request.label req)))
          | _ -> handle_op server req
        in
        (match resp with
        | Serve_proto.Response.Result _ -> Serve_metrics.record_ok server.metrics
        | Serve_proto.Response.Failed _ ->
          Serve_metrics.record_failed server.metrics);
        Serve_metrics.record_latency server.metrics
          ~seconds:(Metrics.wall_now () -. t0);
        match respond resp with
        | Ok () -> if draining then `Close else `Continue
        | Error _ -> `Close))
  in
  let rec loop () =
    if not (Atomic.get server.stop) then
      match Unix.select [ fd ] [] [] poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match answer_frame ~draining:(Atomic.get server.stop) with
        | `Continue -> loop ()
        | `Close -> ())
    else
      (* Stop noticed between requests: grant one grace window so a
         health probe is answered [draining = true] instead of the
         connection silently vanishing, then close. *)
      match Unix.select [ fd ] [] [] drain_grace with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> ignore (answer_frame ~draining:true)
  in
  Fun.protect
    ~finally:(fun () -> close_quietly fd)
    (fun () ->
      match
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout;
        loop ()
      with
      | () -> ()
      | exception e ->
        (* A session must never take the daemon down. *)
        server.log
          (Printf.sprintf "session %d died: %s" id (Printexc.to_string e)))

(* --- socket lifecycle ----------------------------------------------------- *)

(* A socket path that exists is either a live daemon (refuse to replace
   it) or a leftover from a process that died without unlinking (safe to
   remove: connecting to it is refused by the kernel). *)
let claim_socket_path path =
  if not (Sys.file_exists path) then Ok ()
  else
    match (Unix.stat path).Unix.st_kind with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (net ~endpoint:path
           (Printf.sprintf "cannot stat socket path: %s" (Unix.error_message e)))
    | Unix.S_REG | Unix.S_DIR | Unix.S_CHR | Unix.S_BLK | Unix.S_LNK
    | Unix.S_FIFO ->
      Error (net ~endpoint:path "path exists and is not a socket; refusing")
    | Unix.S_SOCK -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () ->
          Error (net ~endpoint:path "a daemon is already serving this socket")
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> (
          match Unix.unlink path with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
            Error
              (net ~endpoint:path
                 (Printf.sprintf "cannot remove stale socket: %s"
                    (Unix.error_message e))))
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (net ~endpoint:path
               (Printf.sprintf "cannot probe existing socket: %s"
                  (Unix.error_message e)))
      in
      close_quietly fd;
      verdict)

let refuse_overload server fd =
  Serve_metrics.record_overload server.metrics;
  let e =
    net ~endpoint:server.cfg.socket_path
      (Printf.sprintf "server at capacity (%d sessions); retry later"
         server.cfg.max_sessions)
  in
  let (_ : (unit, Flm_error.t) result) =
    Serve_proto.write_frame ~endpoint:server.cfg.socket_path fd
      (Bench_json.to_string
         (Serve_proto.Response.to_json (Serve_proto.Response.Failed e)))
  in
  close_quietly fd

let accept_loop server reg listen_fd =
  while not (Atomic.get server.stop) do
    (match Unix.select [ listen_fd ] [] [] poll_interval with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept listen_fd with
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
        ->
        ()
      | fd, _peer ->
        if live_sessions reg >= server.cfg.max_sessions then
          refuse_overload server fd
        else
          spawn_session reg (fun id ->
              server.log (Printf.sprintf "session %d open" id);
              handle_connection server fd id;
              server.log (Printf.sprintf "session %d closed" id))));
    reap reg
  done

(* Flip the stop flag on SIGTERM/SIGINT, ignore SIGPIPE (a client dying
   mid-response must surface as EPIPE on the write, not kill the daemon);
   returns the restorer. *)
let install_signals stop =
  let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let prev_term = Sys.signal Sys.sigterm on_stop in
  let prev_int = Sys.signal Sys.sigint on_stop in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  fun () ->
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigpipe prev_pipe

let final_report server =
  let s : Serve_metrics.snapshot = Serve_metrics.snapshot server.metrics in
  Printf.sprintf
    "%s\n\
     serve: %d requests (%d ok, %d failed, %d malformed, %d refused), p50 \
     %.2f ms, p99 %.2f ms"
    (Engine.report server.engine)
    s.requests s.ok s.failed s.malformed s.rejected_overload s.p50_ms s.p99_ms

let validate cfg =
  if cfg.jobs < 1 then
    Error
      (Flm_error.Invalid_input
         {
           what = "jobs";
           detail = Printf.sprintf "need at least 1 worker, got %d" cfg.jobs;
         })
  else if cfg.max_sessions < 1 then
    Error
      (Flm_error.Invalid_input
         {
           what = "max-sessions";
           detail =
             Printf.sprintf "need at least 1 session, got %d" cfg.max_sessions;
         })
  else Serve_proto.validate_socket_path cfg.socket_path

let run ?(on_ready = fun () -> ()) ?(log = fun _ -> ()) cfg =
  let ( let* ) = Result.bind in
  let endpoint = cfg.socket_path in
  let* () = validate cfg in
  let* () = claim_socket_path cfg.socket_path in
  let* store =
    match cfg.store_dir with
    | None -> Ok None
    | Some dir ->
      let* st = Store.open_dir dir in
      Ok (Some st)
  in
  let close_store () = Option.iter Store.close store in
  let* engine =
    match
      Flm_error.guard ~what:"serve" (fun () ->
          Engine.create ~jobs:cfg.jobs ~config:cfg.engine_config ?store
            ~resume:cfg.resume ())
    with
    | Ok e -> Ok e
    | Error e ->
      close_store ();
      Error e
  in
  let reg = registry_create () in
  let server =
    {
      cfg;
      engine;
      metrics = Serve_metrics.create ();
      stop = Atomic.make false;
      sessions = (fun () -> live_sessions reg);
      log;
    }
  in
  let teardown_engine () =
    Engine.shutdown engine;
    close_store ()
  in
  let* listen_fd =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
        Unix.listen fd 64
      with
      | () -> fd
      | exception e ->
        close_quietly fd;
        raise e
    with
    | fd -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      teardown_engine ();
      Error
        (net ~endpoint
           (Printf.sprintf "cannot listen: %s" (Unix.error_message e)))
  in
  let restore_signals = install_signals server.stop in
  Fun.protect ~finally:restore_signals (fun () ->
      log
        (Printf.sprintf "listening on %s (jobs=%d, sessions<=%d, store=%s)"
           cfg.socket_path cfg.jobs cfg.max_sessions
           (match cfg.store_dir with Some d -> d | None -> "none"));
      on_ready ();
      accept_loop server reg listen_fd;
      (* Stop: no new sessions, drain the live ones, then release the
         engine's domains and the store. *)
      log "stop requested; draining sessions";
      close_quietly listen_fd;
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      drain reg;
      let report = final_report server in
      teardown_engine ();
      log "drained; engine and store closed";
      Ok report)
