(** The [flm serve] daemon: one resident {!Engine} (persistent worker
    pool, striped intern table, warm caches, optional persistent store)
    answering certify/sweep/chaos/store-stat/stats requests over a Unix
    domain socket speaking {!Serve_proto}.

    {b Architecture.}  The main domain runs the accept loop; each accepted
    connection becomes a {e session} running in its own domain, reading
    one request frame at a time and answering it in order.  Sessions are
    bounded by [max_sessions]: a connection beyond the bound is answered
    with a typed overload error ([Flm_error.Net]) and closed, never
    queued.  Concurrent sessions multiplex onto the shared engine — batch
    requests (sweep, chaos) fan out over the persistent pool, single
    certificates run in the session's own domain — and the verdict
    cache's single-flight dedup acts as request coalescing: identical
    in-flight queries are computed once, the losers blocking on the
    winner's flight and counting as [coalesced] in [stats].

    {b Deadlines.}  A request's [timeout_ms] installs a cooperative
    deadline (nested inside the server's own supervision config; the
    tighter wins) that is checked every simulated round of work executed
    in the session's domain.  Work claimed by pool worker domains is
    bounded by the server-wide per-job deadline instead ([--timeout-ms]),
    so a strict per-job bound belongs in the server config and a
    per-request bound is exact for [certify] and best-effort for batches.

    {b Shutdown.}  SIGTERM/SIGINT flip a stop flag: the accept loop
    closes and unlinks the socket, sessions finish their in-flight
    request and drain, the engine's domains are joined, and the store
    (every completed verdict already fsync'd by {!Store.put}) is closed —
    a drained daemon leaves a journal indistinguishable from a batch
    run's. *)

type config = {
  socket_path : string;
  jobs : int;  (** engine worker domains (see {!Engine.default_jobs}) *)
  store_dir : string option;
      (** attach a persistent verdict store below the caches *)
  resume : bool;
      (** serve already-journaled verdicts instead of recomputing *)
  max_sessions : int;  (** concurrent session bound *)
  engine_config : Engine.config;  (** per-job supervision *)
}

val default_max_sessions : int
(** 16. *)

val claim_socket_path : string -> (unit, Flm_error.t) result
(** Make a socket path bindable: a live daemon behind it is refused
    (typed [Net]), a leftover socket from a dead process (the kernel
    refuses connections to it) is unlinked, and a non-socket file is
    refused.  Shared with the chaos proxy, which fronts a daemon on a
    second socket with the same lifecycle. *)

val run :
  ?on_ready:(unit -> unit) ->
  ?log:(string -> unit) ->
  config ->
  (string, Flm_error.t) result
(** Bind the socket, install SIGTERM/SIGINT handlers (restored on exit),
    and serve until stopped; blocks the calling domain.  [on_ready] fires
    once the socket is listening.  [log] receives human-readable progress
    lines (default: dropped).  Returns the final engine + server metrics
    report on clean shutdown, or a typed error when the socket cannot be
    bound or the store cannot be opened. *)
