type t = {
  fd : Unix.file_descr;
  endpoint : string;
  (* A transport error leaves the stream in an undefined framing state (a
     frame may be half-written or half-read); the handle is poisoned so
     every later call fails fast with a typed error instead of reading
     desynchronized bytes as frames. *)
  mutable poisoned : Flm_error.t option;
}

let ( let* ) = Result.bind
let net = Flm_error.net

(* Writing to a server that died mid-connection raises SIGPIPE, which kills
   the process before the EPIPE can be typed.  Client paths must ignore it;
   done once, lazily, so merely linking this module changes nothing.  (The
   daemon installs its own ignore in [Serve.run].) *)
let sigpipe_ignored = lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let set_io_timeout t ~timeout_ms =
  if timeout_ms < 1 then
    Error
      (net ~endpoint:t.endpoint
         (Printf.sprintf "timeout_ms must be positive, got %d" timeout_ms))
  else
    let s = float_of_int timeout_ms /. 1000.0 in
    match
      Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO s
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (net ~endpoint:t.endpoint
           (Printf.sprintf "cannot set socket timeout: %s"
              (Unix.error_message e)))

let connect ?(timeout_ms = 30_000) ~socket_path () =
  Lazy.force sigpipe_ignored;
  let endpoint = socket_path in
  let* () = Serve_proto.validate_socket_path socket_path in
  if timeout_ms < 1 then
    Error
      (net ~endpoint
         (Printf.sprintf "timeout_ms must be positive, got %d" timeout_ms))
  else
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (net ~endpoint
           (Printf.sprintf "socket failed: %s" (Unix.error_message e)))
    | fd -> (
      match
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        let s = float_of_int timeout_ms /. 1000.0 in
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      with
      | () -> Ok { fd; endpoint; poisoned = None }
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (net ~endpoint
             (Printf.sprintf "connect failed: %s" (Unix.error_message e))))

let poison t e =
  (match t.poisoned with None -> t.poisoned <- Some e | Some _ -> ());
  Error e

let request t req =
  match t.poisoned with
  | Some e ->
    Error
      (net ~endpoint:t.endpoint
         ("connection unusable after an earlier transport error: "
         ^ Flm_error.to_string e))
  | None -> (
    let payload = Bench_json.to_string (Serve_proto.Request.to_json req) in
    match Serve_proto.write_frame ~endpoint:t.endpoint t.fd payload with
    | Error e -> poison t e
    | Ok () -> (
      match Serve_proto.read_frame ~endpoint:t.endpoint t.fd with
      | Error e -> poison t e
      | Ok Serve_proto.Eof ->
        poison t
          (net ~endpoint:t.endpoint "server closed the connection unanswered")
      | Ok (Serve_proto.Frame s) -> (
        (* Document-level failures leave the framing layer in sync: the
           frame was read whole, so the connection stays usable. *)
        match Bench_json.parse s with
        | Error e ->
          Error (net ~endpoint:t.endpoint ("malformed response document: " ^ e))
        | Ok json -> (
          match Serve_proto.Response.of_json json with
          | Error e ->
            Error (net ~endpoint:t.endpoint ("invalid response: " ^ e))
          | Ok r -> Ok r))))

let result t req =
  let* resp = request t req in
  match resp with
  | Serve_proto.Response.Result doc -> Ok doc
  | Serve_proto.Response.Failed e -> Error e

let poisoned t = t.poisoned
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
