type t = { fd : Unix.file_descr; endpoint : string }

let ( let* ) = Result.bind
let net ~endpoint detail = Flm_error.Net { endpoint; detail }

let connect ?(timeout_ms = 30_000) ~socket_path () =
  let endpoint = socket_path in
  if timeout_ms < 1 then
    Error
      (net ~endpoint
         (Printf.sprintf "timeout_ms must be positive, got %d" timeout_ms))
  else
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (net ~endpoint
           (Printf.sprintf "socket failed: %s" (Unix.error_message e)))
    | fd -> (
      match
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        let s = float_of_int timeout_ms /. 1000.0 in
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      with
      | () -> Ok { fd; endpoint }
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (net ~endpoint
             (Printf.sprintf "connect failed: %s" (Unix.error_message e))))

let request t req =
  let payload = Bench_json.to_string (Serve_proto.Request.to_json req) in
  let* () = Serve_proto.write_frame ~endpoint:t.endpoint t.fd payload in
  let* input = Serve_proto.read_frame ~endpoint:t.endpoint t.fd in
  match input with
  | Serve_proto.Eof ->
    Error (net ~endpoint:t.endpoint "server closed the connection unanswered")
  | Serve_proto.Frame s -> (
    match Bench_json.parse s with
    | Error e ->
      Error (net ~endpoint:t.endpoint ("malformed response document: " ^ e))
    | Ok json -> (
      match Serve_proto.Response.of_json json with
      | Error e -> Error (net ~endpoint:t.endpoint ("invalid response: " ^ e))
      | Ok r -> Ok r))

let result t req =
  let* resp = request t req in
  match resp with
  | Serve_proto.Response.Result doc -> Ok doc
  | Serve_proto.Response.Failed e -> Error e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
