(** The [flm serve] client: connect to a daemon socket, exchange
    {!Serve_proto} frames, surface every failure as a typed
    {!Flm_error.Net} value.  One connection serves any number of
    sequential requests; concurrency comes from opening more
    connections (the daemon runs one session per connection). *)

type t

val connect :
  ?timeout_ms:int -> socket_path:string -> unit -> (t, Flm_error.t) result
(** Connect to a daemon's Unix socket.  [timeout_ms] (default 30 000)
    bounds each subsequent socket read and write, so a wedged daemon
    surfaces as a typed error instead of a hang.  [Error (Net _)] when
    the socket does not exist, nothing is listening, or the handshake
    write fails. *)

val request :
  t -> Serve_proto.Request.t -> (Serve_proto.Response.t, Flm_error.t) result
(** Send one request frame and read one response frame.  [Error _] only
    for transport-level failures (the connection is then unusable); a
    server-side failure arrives as [Ok (Failed _)] on a connection that
    remains good for the next request. *)

val result : t -> Serve_proto.Request.t -> (Bench_json.t, Flm_error.t) result
(** {!request}, with server-side failures folded into the error channel:
    [Ok doc] is the op-specific result document. *)

val close : t -> unit
