(** The [flm serve] client: connect to a daemon socket, exchange
    {!Serve_proto} frames, surface every failure as a typed
    {!Flm_error.Net} value.  One connection serves any number of
    sequential requests; concurrency comes from opening more
    connections (the daemon runs one session per connection). *)

type t

val connect :
  ?timeout_ms:int -> socket_path:string -> unit -> (t, Flm_error.t) result
(** Connect to a daemon's Unix socket.  [timeout_ms] (default 30 000)
    bounds each subsequent socket read and write, so a wedged daemon
    surfaces as a typed error instead of a hang.  [Error (Net _)] when
    the path is over-long ({!Serve_proto.validate_socket_path}), the
    socket does not exist, nothing is listening, or the handshake write
    fails.  The first connect in a process sets [SIGPIPE] to ignore, so
    writing to a dead server surfaces as a typed [EPIPE] error instead of
    killing the process. *)

val set_io_timeout : t -> timeout_ms:int -> (unit, Flm_error.t) result
(** Re-bound this connection's socket reads and writes (e.g. to fit the
    remainder of a caller's per-call deadline budget). *)

val request :
  t -> Serve_proto.Request.t -> (Serve_proto.Response.t, Flm_error.t) result
(** Send one request frame and read one response frame.  [Error _] only
    for transport-level failures; a server-side failure arrives as
    [Ok (Failed _)] on a connection that remains good for the next
    request.  A transport failure (short read or write, timeout mid-frame,
    EOF, reset) leaves the stream in an undefined framing state, so it
    {e poisons} the handle: every later [request] fails fast with a typed
    [Net] error naming the original failure, and never reads
    desynchronized bytes as frames.  Document-level failures (malformed or
    invalid response JSON in a complete frame) do not poison. *)

val poisoned : t -> Flm_error.t option
(** The transport error that poisoned this handle, if any — the caller's
    cue to reconnect. *)

val result : t -> Serve_proto.Request.t -> (Bench_json.t, Flm_error.t) result
(** {!request}, with server-side failures folded into the error channel:
    [Ok doc] is the op-specific result document. *)

val close : t -> unit
