type snapshot = {
  requests : int;
  ok : int;
  failed : int;
  malformed : int;
  rejected_overload : int;
  latency_count : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

let reservoir_size = 8192

type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable ok : int;
  mutable failed : int;
  mutable malformed : int;
  mutable rejected_overload : int;
  latencies : float array;  (* ring buffer, seconds *)
  mutable next : int;  (* next write slot *)
  mutable filled : int;  (* samples present, <= reservoir_size *)
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    ok = 0;
    failed = 0;
    malformed = 0;
    rejected_overload = 0;
    latencies = Array.make reservoir_size 0.0;
    next = 0;
    filled = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record_request t = with_lock t (fun () -> t.requests <- t.requests + 1)
let record_ok t = with_lock t (fun () -> t.ok <- t.ok + 1)
let record_failed t = with_lock t (fun () -> t.failed <- t.failed + 1)
let record_malformed t = with_lock t (fun () -> t.malformed <- t.malformed + 1)

let record_overload t =
  with_lock t (fun () -> t.rejected_overload <- t.rejected_overload + 1)

let record_latency t ~seconds =
  with_lock t (fun () ->
      t.latencies.(t.next) <- seconds;
      t.next <- (t.next + 1) mod reservoir_size;
      if t.filled < reservoir_size then t.filled <- t.filled + 1)

(* Nearest-rank percentile over the sorted sample; [q] in [0, 1]. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let snapshot t =
  with_lock t (fun () ->
      let sample = Array.sub t.latencies 0 t.filled in
      Array.sort Float.compare sample;
      let ms s = 1000.0 *. s in
      {
        requests = t.requests;
        ok = t.ok;
        failed = t.failed;
        malformed = t.malformed;
        rejected_overload = t.rejected_overload;
        latency_count = t.filled;
        p50_ms = ms (percentile sample 0.50);
        p99_ms = ms (percentile sample 0.99);
        max_ms =
          ms (if t.filled = 0 then 0.0 else sample.(Array.length sample - 1));
      })
