(** Server-side counters for [flm serve]: request totals by outcome,
    overload rejections, malformed frames/documents, and a bounded
    latency reservoir from which the [stats] request derives p50/p99.

    All mutators are mutex-protected and callable from session domains. *)

type t

type snapshot = {
  requests : int;  (** frames that parsed into valid requests *)
  ok : int;  (** requests answered with a result *)
  failed : int;  (** requests answered with a typed error *)
  malformed : int;
      (** framing violations and documents that failed strict validation *)
  rejected_overload : int;
      (** connections refused because the session set was full *)
  latency_count : int;  (** samples currently in the reservoir *)
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

val create : unit -> t
val record_request : t -> unit
val record_ok : t -> unit
val record_failed : t -> unit
val record_malformed : t -> unit
val record_overload : t -> unit

val record_latency : t -> seconds:float -> unit
(** Adds one sample; the reservoir keeps the most recent 8192 samples
    (older ones are overwritten), so percentiles track current load. *)

val snapshot : t -> snapshot
