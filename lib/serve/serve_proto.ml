(* The framing layer and the versioned request/response schemas.  Parsing
   is strict by construction: every reader checks the protocol version,
   every required field's presence and type, size bounds, and rejects
   unknown fields — the wire is a contract, not a suggestion. *)

let protocol_version = 1
let max_frame_bytes = 1 lsl 20

(* --- strict JSON readers ------------------------------------------------- *)

let ( let* ) = Result.bind

let obj_fields ~what = function
  | Bench_json.Obj kvs -> Ok kvs
  | _ -> Error (Printf.sprintf "%s: expected an object" what)

let no_unknown ~what ~allowed kvs =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
  | Some (k, _) -> Error (Printf.sprintf "%s: unknown field %S" what k)
  | None -> Ok ()

let field ~what kvs k =
  match List.assoc_opt k kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what k)

let int_field ~what kvs k =
  let* v = field ~what kvs k in
  match Bench_json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: field %S must be an integer" what k)

let string_field ~what kvs k =
  let* v = field ~what kvs k in
  match Bench_json.to_string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S must be a string" what k)

let bool_field ~what kvs k =
  let* v = field ~what kvs k in
  match v with
  | Bench_json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s: field %S must be a boolean" what k)

(* Nullable boolean: the field must be present, [null] meaning [None]. *)
let bool_opt_field ~what kvs k =
  let* v = field ~what kvs k in
  match v with
  | Bench_json.Bool b -> Ok (Some b)
  | Bench_json.Null -> Ok None
  | _ -> Error (Printf.sprintf "%s: field %S must be a boolean or null" what k)

let list_field ~what kvs k =
  let* v = field ~what kvs k in
  match Bench_json.to_list_opt v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "%s: field %S must be a list" what k)

let bounded ~what ~lo ~hi k i =
  if i < lo || i > hi then
    Error (Printf.sprintf "%s: field %S must be in [%d, %d]" what k lo hi)
  else Ok i

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let check_version ~what kvs =
  let* v = int_field ~what kvs "v" in
  if v <> protocol_version then
    Error
      (Printf.sprintf "%s: protocol version %d, this peer speaks %d" what v
         protocol_version)
  else Ok ()

let bool_opt_json = function
  | Some b -> Bench_json.Bool b
  | None -> Bench_json.Null

(* --- verdicts ------------------------------------------------------------ *)

module Verdict = struct
  type t =
    | Cell of Sweep.cell
    | Conn of (int * bool * bool option * bool option)
    | Cert of { contradiction : bool; summary : string }
    | Chaos of Job.chaos_outcome

  let of_job_verdict = function
    | Job.Cell c -> Cell c
    | Job.Conn r -> Conn r
    | Job.Cert o ->
      Cert { contradiction = o.Job.contradiction; summary = o.Job.summary }
    | Job.Chaos o -> Chaos o

  let to_json = function
    | Cell { Sweep.n; f; adequate; survived_attacks; certificate_broke_it } ->
      Bench_json.Obj
        [ "kind", Bench_json.String "cell";
          "n", Bench_json.Int n;
          "f", Bench_json.Int f;
          "adequate", Bench_json.Bool adequate;
          "survived_attacks", bool_opt_json survived_attacks;
          "certificate_broke_it", bool_opt_json certificate_broke_it;
        ]
    | Conn (kappa, adequate, relay_ok, certificate_broke_it) ->
      Bench_json.Obj
        [ "kind", Bench_json.String "conn";
          "kappa", Bench_json.Int kappa;
          "adequate", Bench_json.Bool adequate;
          "relay_ok", bool_opt_json relay_ok;
          "certificate_broke_it", bool_opt_json certificate_broke_it;
        ]
    | Cert { contradiction; summary } ->
      Bench_json.Obj
        [ "kind", Bench_json.String "cert";
          "contradiction", Bench_json.Bool contradiction;
          "summary", Bench_json.String summary;
        ]
    | Chaos { Job.trial; seed; strategy; faulty; survived; violations } ->
      Bench_json.Obj
        [ "kind", Bench_json.String "chaos";
          "trial", Bench_json.Int trial;
          "seed", Bench_json.Int seed;
          "strategy", Bench_json.String strategy;
          "faulty", Bench_json.List (List.map (fun u -> Bench_json.Int u) faulty);
          "survived", Bench_json.Bool survived;
          "violations",
          Bench_json.List (List.map (fun v -> Bench_json.String v) violations);
        ]

  let of_json json =
    let what = "verdict" in
    let* kvs = obj_fields ~what json in
    let* kind = string_field ~what kvs "kind" in
    match kind with
    | "cell" ->
      let* () =
        no_unknown ~what
          ~allowed:
            [ "kind"; "n"; "f"; "adequate"; "survived_attacks";
              "certificate_broke_it" ]
          kvs
      in
      let* n = int_field ~what kvs "n" in
      let* f = int_field ~what kvs "f" in
      let* adequate = bool_field ~what kvs "adequate" in
      let* survived_attacks = bool_opt_field ~what kvs "survived_attacks" in
      let* certificate_broke_it =
        bool_opt_field ~what kvs "certificate_broke_it"
      in
      Ok
        (Cell { Sweep.n; f; adequate; survived_attacks; certificate_broke_it })
    | "conn" ->
      let* () =
        no_unknown ~what
          ~allowed:[ "kind"; "kappa"; "adequate"; "relay_ok";
                     "certificate_broke_it" ]
          kvs
      in
      let* kappa = int_field ~what kvs "kappa" in
      let* adequate = bool_field ~what kvs "adequate" in
      let* relay_ok = bool_opt_field ~what kvs "relay_ok" in
      let* broke = bool_opt_field ~what kvs "certificate_broke_it" in
      Ok (Conn (kappa, adequate, relay_ok, broke))
    | "cert" ->
      let* () =
        no_unknown ~what ~allowed:[ "kind"; "contradiction"; "summary" ] kvs
      in
      let* contradiction = bool_field ~what kvs "contradiction" in
      let* summary = string_field ~what kvs "summary" in
      Ok (Cert { contradiction; summary })
    | "chaos" ->
      let* () =
        no_unknown ~what
          ~allowed:
            [ "kind"; "trial"; "seed"; "strategy"; "faulty"; "survived";
              "violations" ]
          kvs
      in
      let* trial = int_field ~what kvs "trial" in
      let* seed = int_field ~what kvs "seed" in
      let* strategy = string_field ~what kvs "strategy" in
      let* faulty_json = list_field ~what kvs "faulty" in
      let* faulty =
        map_result
          (fun v ->
            match Bench_json.to_int_opt v with
            | Some i -> Ok i
            | None -> Error "verdict: faulty entries must be integers")
          faulty_json
      in
      let* survived = bool_field ~what kvs "survived" in
      let* violations_json = list_field ~what kvs "violations" in
      let* violations =
        map_result
          (fun v ->
            match Bench_json.to_string_opt v with
            | Some s -> Ok s
            | None -> Error "verdict: violations entries must be strings")
          violations_json
      in
      Ok (Chaos { Job.trial; seed; strategy; faulty; survived; violations })
    | k -> Error (Printf.sprintf "verdict: unknown kind %S" k)

  let equal a b =
    match a, b with
    | Cell c, Cell c' -> c = c'
    | Conn r, Conn r' -> r = r'
    | Cert c, Cert c' ->
      c.contradiction = c'.contradiction && String.equal c.summary c'.summary
    | Chaos o, Chaos o' -> o = o'
    | (Cell _ | Conn _ | Cert _ | Chaos _), _ -> false
end

(* --- typed errors on the wire -------------------------------------------- *)

let error_class = function
  | Flm_error.Invalid_input _ -> "invalid-input"
  | Flm_error.Job_failed _ -> "job-failed"
  | Flm_error.Job_timeout _ -> "job-timeout"
  | Flm_error.Worker_crashed _ -> "worker-crashed"
  | Flm_error.Axiom_violation _ -> "axiom-violation"
  | Flm_error.Store_corrupt _ -> "store-corrupt"
  | Flm_error.Net _ -> "net"

let error_to_json e =
  let s k v = k, Bench_json.String v in
  let fields =
    match e with
    | Flm_error.Invalid_input { what; detail } ->
      [ s "what" what; s "detail" detail ]
    | Flm_error.Job_failed { job; exn } -> [ s "job" job; s "exn" exn ]
    | Flm_error.Job_timeout { job; timeout_ms } ->
      [ s "job" job; ("timeout_ms", Bench_json.Int timeout_ms) ]
    | Flm_error.Worker_crashed { detail } -> [ s "detail" detail ]
    | Flm_error.Axiom_violation { axiom; detail } ->
      [ s "axiom" axiom; s "detail" detail ]
    | Flm_error.Store_corrupt { path; offset; detail } ->
      [ s "path" path; ("offset", Bench_json.Int offset); s "detail" detail ]
    | Flm_error.Net { endpoint; detail } ->
      [ s "endpoint" endpoint; s "detail" detail ]
  in
  Bench_json.Obj
    (("class", Bench_json.String (error_class e))
    :: ("exit_code", Bench_json.Int (Flm_error.exit_code e))
    :: fields)

let error_of_json json =
  let what = "error" in
  let* kvs = obj_fields ~what json in
  let* cls = string_field ~what kvs "class" in
  let* _ = int_field ~what kvs "exit_code" in
  let str = string_field ~what kvs in
  let strict allowed k =
    let* () = no_unknown ~what ~allowed:("class" :: "exit_code" :: allowed) kvs in
    k ()
  in
  match cls with
  | "invalid-input" ->
    strict [ "what"; "detail" ] @@ fun () ->
    let* w = str "what" in
    let* detail = str "detail" in
    Ok (Flm_error.Invalid_input { what = w; detail })
  | "job-failed" ->
    strict [ "job"; "exn" ] @@ fun () ->
    let* job = str "job" in
    let* exn = str "exn" in
    Ok (Flm_error.Job_failed { job; exn })
  | "job-timeout" ->
    strict [ "job"; "timeout_ms" ] @@ fun () ->
    let* job = str "job" in
    let* timeout_ms = int_field ~what kvs "timeout_ms" in
    Ok (Flm_error.Job_timeout { job; timeout_ms })
  | "worker-crashed" ->
    strict [ "detail" ] @@ fun () ->
    let* detail = str "detail" in
    Ok (Flm_error.Worker_crashed { detail })
  | "axiom-violation" ->
    strict [ "axiom"; "detail" ] @@ fun () ->
    let* axiom = str "axiom" in
    let* detail = str "detail" in
    Ok (Flm_error.Axiom_violation { axiom; detail })
  | "store-corrupt" ->
    strict [ "path"; "offset"; "detail" ] @@ fun () ->
    let* path = str "path" in
    let* offset = int_field ~what kvs "offset" in
    let* detail = str "detail" in
    Ok (Flm_error.Store_corrupt { path; offset; detail })
  | "net" ->
    strict [ "endpoint"; "detail" ] @@ fun () ->
    let* endpoint = str "endpoint" in
    let* detail = str "detail" in
    Ok (Flm_error.Net { endpoint; detail })
  | c -> Error (Printf.sprintf "error: unknown class %S" c)

module Slot = struct
  type t = (Verdict.t, Flm_error.t) result

  let to_json = function
    | Ok v -> Verdict.to_json v
    | Error e ->
      Bench_json.Obj
        [ "kind", Bench_json.String "error"; "error", error_to_json e ]

  let of_json json =
    let what = "slot" in
    let* kvs = obj_fields ~what json in
    let* kind = string_field ~what kvs "kind" in
    match kind with
    | "error" ->
      let* () = no_unknown ~what ~allowed:[ "kind"; "error" ] kvs in
      let* ej = field ~what kvs "error" in
      let* e = error_of_json ej in
      Ok (Error e)
    | _ ->
      let* v = Verdict.of_json json in
      Ok (Ok v)
end

(* --- health -------------------------------------------------------------- *)

(* The health/readiness document answered to a [Ping] request.  Served
   straight off the daemon's counters — never touches the engine's work
   queues — so it stays answerable while every session is busy, and keeps
   being answered (with [draining = true]) during a SIGTERM drain, when
   every other op would be refused. *)
module Ping = struct
  type t = {
    draining : bool;
    sessions : int;  (** live session domains *)
    max_sessions : int;
    requests : int;  (** total requests answered so far *)
    ok : int;
    failed : int;
    jobs : int;  (** engine worker domains *)
    store_attached : bool;
  }

  let to_json t =
    Bench_json.Obj
      [ "draining", Bench_json.Bool t.draining;
        "sessions", Bench_json.Int t.sessions;
        "max_sessions", Bench_json.Int t.max_sessions;
        "requests", Bench_json.Int t.requests;
        "ok", Bench_json.Int t.ok;
        "failed", Bench_json.Int t.failed;
        "jobs", Bench_json.Int t.jobs;
        "store_attached", Bench_json.Bool t.store_attached;
      ]

  let of_json json =
    let what = "ping" in
    let* kvs = obj_fields ~what json in
    let* () =
      no_unknown ~what
        ~allowed:
          [ "draining"; "sessions"; "max_sessions"; "requests"; "ok";
            "failed"; "jobs"; "store_attached" ]
        kvs
    in
    let* draining = bool_field ~what kvs "draining" in
    let* sessions = int_field ~what kvs "sessions" in
    let* max_sessions = int_field ~what kvs "max_sessions" in
    let* requests = int_field ~what kvs "requests" in
    let* ok = int_field ~what kvs "ok" in
    let* failed = int_field ~what kvs "failed" in
    let* jobs = int_field ~what kvs "jobs" in
    let* store_attached = bool_field ~what kvs "store_attached" in
    Ok { draining; sessions; max_sessions; requests; ok; failed; jobs;
         store_attached }
end

(* --- requests ------------------------------------------------------------ *)

module Request = struct
  type op =
    | Certify of { problem : Job.cert_problem; n : int; f : int }
    | Chaos of {
        family : string;
        f : int;
        seed : int;
        strategy : string;
        trials : int;
      }
    | Sweep of { n_max : int; f_max : int }
    | Store_stat
    | Stats
    | Ping

  type t = { op : op; timeout_ms : int option }

  let label t =
    match t.op with
    | Certify _ -> "certify"
    | Chaos _ -> "chaos"
    | Sweep _ -> "sweep"
    | Store_stat -> "store-stat"
    | Stats -> "stats"
    | Ping -> "ping"

  let to_json t =
    let base =
      match t.op with
      | Certify { problem; n; f } ->
        [ "op", Bench_json.String "certify";
          "problem", Bench_json.String (Job.cert_problem_name problem);
          "n", Bench_json.Int n;
          "f", Bench_json.Int f;
        ]
      | Chaos { family; f; seed; strategy; trials } ->
        [ "op", Bench_json.String "chaos";
          "family", Bench_json.String family;
          "f", Bench_json.Int f;
          "seed", Bench_json.Int seed;
          "strategy", Bench_json.String strategy;
          "trials", Bench_json.Int trials;
        ]
      | Sweep { n_max; f_max } ->
        [ "op", Bench_json.String "sweep";
          "n_max", Bench_json.Int n_max;
          "f_max", Bench_json.Int f_max;
        ]
      | Store_stat -> [ "op", Bench_json.String "store-stat" ]
      | Stats -> [ "op", Bench_json.String "stats" ]
      | Ping -> [ "op", Bench_json.String "ping" ]
    in
    let timeout =
      match t.timeout_ms with
      | Some ms -> [ "timeout_ms", Bench_json.Int ms ]
      | None -> []
    in
    Bench_json.Obj ((("v", Bench_json.Int protocol_version) :: base) @ timeout)

  (* Size bounds: big enough for every workload the batch CLI serves today,
     small enough that one request cannot wedge the daemon. *)
  let max_sweep_n = 32
  let max_sweep_f = 8
  let max_trials = 10_000
  let max_timeout_ms = 3_600_000
  let max_size = 4096

  let of_json json =
    let what = "request" in
    let* kvs = obj_fields ~what json in
    let* () = check_version ~what kvs in
    let* op = string_field ~what kvs "op" in
    let* timeout_ms =
      match List.assoc_opt "timeout_ms" kvs with
      | None -> Ok None
      | Some v -> (
        match Bench_json.to_int_opt v with
        | Some ms ->
          let* ms = bounded ~what ~lo:1 ~hi:max_timeout_ms "timeout_ms" ms in
          Ok (Some ms)
        | None -> Error "request: field \"timeout_ms\" must be an integer")
    in
    let strict allowed k =
      let* () =
        no_unknown ~what ~allowed:("v" :: "op" :: "timeout_ms" :: allowed) kvs
      in
      k ()
    in
    let* op =
      match op with
      | "certify" ->
        strict [ "problem"; "n"; "f" ] @@ fun () ->
        let* p = string_field ~what kvs "problem" in
        let* problem =
          match Job.cert_problem_of_string p with
          | Some problem -> Ok problem
          | None ->
            Error
              (Printf.sprintf
                 "request: unknown certify problem %S (servable: ba, \
                  ba-collapse, ba-conn)"
                 p)
        in
        let* n = int_field ~what kvs "n" in
        let* n = bounded ~what ~lo:0 ~hi:max_size "n" n in
        let* f = int_field ~what kvs "f" in
        let* f = bounded ~what ~lo:0 ~hi:max_size "f" f in
        Ok (Certify { problem; n; f })
      | "chaos" ->
        strict [ "family"; "f"; "seed"; "strategy"; "trials" ] @@ fun () ->
        let* family = string_field ~what kvs "family" in
        let* f = int_field ~what kvs "f" in
        let* f = bounded ~what ~lo:0 ~hi:max_size "f" f in
        let* seed = int_field ~what kvs "seed" in
        let* strategy = string_field ~what kvs "strategy" in
        let* trials = int_field ~what kvs "trials" in
        let* trials = bounded ~what ~lo:1 ~hi:max_trials "trials" trials in
        Ok (Chaos { family; f; seed; strategy; trials })
      | "sweep" ->
        strict [ "n_max"; "f_max" ] @@ fun () ->
        let* n_max = int_field ~what kvs "n_max" in
        let* n_max = bounded ~what ~lo:3 ~hi:max_sweep_n "n_max" n_max in
        let* f_max = int_field ~what kvs "f_max" in
        let* f_max = bounded ~what ~lo:1 ~hi:max_sweep_f "f_max" f_max in
        Ok (Sweep { n_max; f_max })
      | "store-stat" -> strict [] @@ fun () -> Ok Store_stat
      | "stats" -> strict [] @@ fun () -> Ok Stats
      | "ping" -> strict [] @@ fun () -> Ok Ping
      | o -> Error (Printf.sprintf "request: unknown op %S" o)
    in
    Ok { op; timeout_ms }
end

(* --- responses ----------------------------------------------------------- *)

module Response = struct
  type t = Result of Bench_json.t | Failed of Flm_error.t

  let to_json = function
    | Result payload ->
      Bench_json.Obj
        [ "v", Bench_json.Int protocol_version;
          "status", Bench_json.String "ok";
          "result", payload;
        ]
    | Failed e ->
      Bench_json.Obj
        [ "v", Bench_json.Int protocol_version;
          "status", Bench_json.String "error";
          "error", error_to_json e;
        ]

  let of_json json =
    let what = "response" in
    let* kvs = obj_fields ~what json in
    let* () = check_version ~what kvs in
    let* status = string_field ~what kvs "status" in
    match status with
    | "ok" ->
      let* () = no_unknown ~what ~allowed:[ "v"; "status"; "result" ] kvs in
      let* payload = field ~what kvs "result" in
      Ok (Result payload)
    | "error" ->
      let* () = no_unknown ~what ~allowed:[ "v"; "status"; "error" ] kvs in
      let* ej = field ~what kvs "error" in
      let* e = error_of_json ej in
      Ok (Failed e)
    | s -> Error (Printf.sprintf "response: unknown status %S" s)
end

(* --- socket addresses ----------------------------------------------------- *)

let net = Flm_error.net

(* [sun_path] is a fixed ~108-byte kernel buffer (104 on some BSDs); a
   longer path would be truncated or refused with a bare EINVAL deep inside
   [bind]/[connect].  Both ends validate up front instead, with the limit
   and the offending length in the message. *)
let max_socket_path = 103

let validate_socket_path path =
  let n = String.length path in
  if n = 0 then Error (net ~endpoint:path "socket path is empty")
  else if n > max_socket_path then
    Error
      (net ~endpoint:path
         (Printf.sprintf
            "socket path is %d bytes; unix sun_path holds at most %d — use a \
             shorter path (e.g. under /tmp)"
            n max_socket_path))
  else Ok ()

(* --- framing over file descriptors --------------------------------------- *)

let rec retry_intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type input = Frame of string | Eof

(* Read exactly [n] bytes, or report how the connection ended instead. *)
let read_exact ~endpoint fd buf off n =
  let rec go off remaining =
    if remaining = 0 then Ok ()
    else
      match retry_intr (fun () -> Unix.read fd buf off remaining) with
      | 0 -> Error (net ~endpoint "connection closed mid-frame")
      | k -> go (off + k) (remaining - k)
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (net ~endpoint
             (Printf.sprintf "read failed: %s" (Unix.error_message e)))
  in
  go off n

let read_frame ~endpoint fd =
  let header = Bytes.create 4 in
  (* The first header byte distinguishes an orderly EOF from a torn frame. *)
  match retry_intr (fun () -> Unix.read fd header 0 4) with
  | 0 -> Ok Eof
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (net ~endpoint (Printf.sprintf "read failed: %s" (Unix.error_message e)))
  | k -> (
    let* () = read_exact ~endpoint fd header k (4 - k) in
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len <= 0 || len > max_frame_bytes then
      Error
        (net ~endpoint
           (Printf.sprintf
              "invalid frame length %d (frames carry 1..%d payload bytes)" len
              max_frame_bytes))
    else
      let payload = Bytes.create len in
      let* () = read_exact ~endpoint fd payload 0 len in
      Ok (Frame (Bytes.unsafe_to_string payload)))

let write_frame ~endpoint fd payload =
  let bytes = frame payload in
  let total = String.length bytes in
  let rec go off =
    if off = total then Ok ()
    else
      match
        retry_intr (fun () -> Unix.write_substring fd bytes off (total - off))
      with
      | 0 -> Error (net ~endpoint "write made no progress")
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (net ~endpoint
             (Printf.sprintf "write failed: %s" (Unix.error_message e)))
  in
  go 0
