(** The wire protocol of [flm serve]: length-prefixed frames whose payloads
    are {!Bench_json} documents, with versioned, strictly-validated request
    and response schemas.

    {b Framing.}  A frame is a 4-byte big-endian payload length followed by
    exactly that many payload bytes; payloads are UTF-8 JSON texts.  A
    length of zero or above {!max_frame_bytes} is a protocol violation —
    the peer is not speaking this protocol and the connection cannot be
    re-synchronized, so framing errors are terminal for the connection
    (typed as {!Flm_error.Net}), while {e document}-level errors (bad JSON,
    unknown op, wrong version) are answered with an error response on a
    connection that stays usable.

    {b Versioning.}  Every request and response document carries
    ["v" : {!protocol_version}]; a reader rejects any other value, so a
    future incompatible schema bumps the version and old peers fail closed
    with a typed error instead of misreading fields.

    {b Strictness.}  [of_json] validators reject missing fields, wrong
    types, out-of-range sizes, {e and unknown fields} — a misspelled
    optional field is an error, never silently ignored. *)

val protocol_version : int
(** 1. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (1 MiB). *)

(** The serveable verdict projection: what crosses the wire.

    [Cell], [Conn], and [Chaos] verdicts are first-order data and project
    faithfully; a [Cert] verdict carries traces and device closures, so
    only its data projection (contradiction flag + verdict line) is
    served — exactly the projection the persistent store keeps
    ({!Job.verdict_to_value}). *)
module Verdict : sig
  type t =
    | Cell of Sweep.cell
    | Conn of (int * bool * bool option * bool option)
    | Cert of { contradiction : bool; summary : string }
    | Chaos of Job.chaos_outcome

  val of_job_verdict : Job.verdict -> t
  val to_json : t -> Bench_json.t
  val of_json : Bench_json.t -> (t, string) result
  val equal : t -> t -> bool
end

(** One batch slot: a verdict or the typed error that replaced it, exactly
    mirroring the engine's supervised result lists. *)
module Slot : sig
  type t = (Verdict.t, Flm_error.t) result

  val to_json : t -> Bench_json.t
  val of_json : Bench_json.t -> (t, string) result
end

(** The health/readiness document answered to a [Ping] request: served
    straight off the daemon's counters (never enqueued behind engine
    work), and still answered — with [draining = true] — while a SIGTERM
    drain is refusing every other op.  A resilient client uses it to tell
    "server draining, back off and reconnect" from "server dead". *)
module Ping : sig
  type t = {
    draining : bool;
    sessions : int;
    max_sessions : int;
    requests : int;
    ok : int;
    failed : int;
    jobs : int;
    store_attached : bool;
  }

  val to_json : t -> Bench_json.t
  val of_json : Bench_json.t -> (t, string) result
end

module Request : sig
  type op =
    | Certify of { problem : Job.cert_problem; n : int; f : int }
    | Chaos of {
        family : string;
        f : int;
        seed : int;
        strategy : string;
        trials : int;
      }
    | Sweep of { n_max : int; f_max : int }
    | Store_stat
    | Stats
    | Ping  (** health/readiness probe; see {!Ping} for the answer *)

  type t = {
    op : op;
    timeout_ms : int option;
        (** per-request deadline, nested inside the server's own
            supervision config (the tighter deadline wins) *)
  }

  val label : t -> string
  (** Short op name for logs and latency records. *)

  val to_json : t -> Bench_json.t

  val of_json : Bench_json.t -> (t, string) result
  (** Strict: version, op, field presence, field types, size bounds
      (sweeps capped at [n_max] 32 / [f_max] 8, chaos at 10_000 trials,
      deadlines at 1 h), and no unknown fields.  Family and strategy
      strings are schema-checked here and {e semantically} validated by
      the server's engine, which answers [Invalid_input] for a family or
      strategy that does not parse. *)
end

module Response : sig
  type t =
    | Result of Bench_json.t  (** op-specific result document *)
    | Failed of Flm_error.t

  val to_json : t -> Bench_json.t
  val of_json : Bench_json.t -> (t, string) result
end

val error_to_json : Flm_error.t -> Bench_json.t
(** Full-fidelity projection (class, every payload field, and the class's
    stable [exit_code] so shell callers can dispatch without a table). *)

val error_of_json : Bench_json.t -> (Flm_error.t, string) result
(** Exact inverse of {!error_to_json}. *)

(* --- socket addresses ---------------------------------------------------- *)

val max_socket_path : int
(** Longest Unix socket path either end will accept (103 bytes — the
    portable [sun_path] floor, leaving room for the terminating NUL). *)

val validate_socket_path : string -> (unit, Flm_error.t) result
(** Reject empty or over-long socket paths with a descriptive
    {!Flm_error.Net} before the kernel can answer a bare [EINVAL] (or
    silently truncate).  Called by both [Serve.run] and
    [Serve_client.connect]. *)

(* --- framing over file descriptors ------------------------------------- *)

val frame : string -> string
(** [frame payload] is the on-the-wire bytes: length prefix + payload. *)

type input =
  | Frame of string  (** one complete payload *)
  | Eof  (** orderly close before any byte of a new frame *)

val read_frame : endpoint:string -> Unix.file_descr -> (input, Flm_error.t) result
(** Blocking, EINTR-safe.  [Error (Net _)] on a zero/oversized length
    prefix, a connection that dies mid-frame, or a socket-level read
    failure (including a receive timeout installed by the caller). *)

val write_frame :
  endpoint:string -> Unix.file_descr -> string -> (unit, Flm_error.t) result
(** Blocking, EINTR-safe; [Error (Net _)] on any write failure. *)
