(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over strings.

    The journal frames every record with this checksum so a bit-flipped or
    torn record is detected on scan, never deserialized.  Table-driven,
    zlib-compatible: [string "123456789" = 0xCBF43926]. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] folds [s.[pos .. pos+len-1]] into a running
    checksum; start from [0] and chain for multi-part input.  Raises
    [Flm_error.Error (Invalid_input _)] when the range is out of bounds. *)

val string : string -> int
(** The checksum of a whole string (a 32-bit value in an OCaml int). *)
