let magic = "FLMJRNL1"

let corrupt path offset detail =
  Flm_error.Store_corrupt { path; offset; detail }

(* --- framing --------------------------------------------------------------- *)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  let put_u32 n =
    for i = 0 to 3 do
      Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
    done
  in
  put_u32 (String.length payload);
  put_u32 (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let read_u32 s pos =
  let n = ref 0 in
  for i = 3 downto 0 do
    n := (!n lsl 8) lor Char.code s.[pos + i]
  done;
  !n

(* --- scanning --------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type scan_result = {
  path : string;
  records : (int * string) list;
  corruptions : Flm_error.t list;
  valid_end : int;
}

let scan path =
  let mlen = String.length magic in
  if not (Sys.file_exists path) then
    Ok { path; records = []; corruptions = []; valid_end = mlen }
  else
    match read_file path with
    | exception Sys_error detail -> Error (corrupt path 0 detail)
    | contents ->
      let size = String.length contents in
      if size < mlen then
        (* A kill between creating the file and finishing the magic header
           leaves a strict prefix of it; anything else is not a journal. *)
        if contents = String.sub magic 0 size then
          Ok
            {
              path;
              records = [];
              corruptions =
                (if size = 0 then []
                 else
                   [ corrupt path 0
                       (Printf.sprintf "torn magic header: %d bytes of %d"
                          size mlen) ]);
              valid_end = mlen;
            }
        else Error (corrupt path 0 "bad magic header: not a journal")
      else if String.sub contents 0 mlen <> magic then
        Error (corrupt path 0 "bad magic header: not a journal")
      else begin
        let records = ref [] and corruptions = ref [] in
        let valid_end = ref size in
        let rec go offset =
          if offset < size then
            if size - offset < 8 then begin
              (* A crash mid-append can leave a partial frame header. *)
              valid_end := offset;
              corruptions :=
                corrupt path offset
                  (Printf.sprintf "torn tail: %d header bytes of 8"
                     (size - offset))
                :: !corruptions
            end
            else begin
              let len = read_u32 contents offset in
              let crc = read_u32 contents (offset + 4) in
              if offset + 8 + len > size then begin
                valid_end := offset;
                corruptions :=
                  corrupt path offset
                    (Printf.sprintf
                       "torn tail: declared %d payload bytes, %d remain" len
                       (size - offset - 8))
                  :: !corruptions
              end
              else begin
                let actual =
                  Crc32.update 0 contents ~pos:(offset + 8) ~len
                in
                if actual = crc then begin
                  records :=
                    (offset, String.sub contents (offset + 8) len) :: !records;
                  go (offset + 8 + len)
                end
                else begin
                  (* A payload bit-flip: skip exactly this frame.  If the
                     length field itself was flipped the next "frame" will
                     fail its CRC too, and the cascade ends at the torn-tail
                     check — corrupted regions are never deserialized. *)
                  corruptions :=
                    corrupt path offset
                      (Printf.sprintf "CRC mismatch: stored %#x, computed %#x"
                         crc actual)
                    :: !corruptions;
                  go (offset + 8 + len)
                end
              end
            end
        in
        go mlen;
        Ok
          {
            path;
            records = List.rev !records;
            corruptions = List.rev !corruptions;
            valid_end = !valid_end;
          }
      end

(* --- appending --------------------------------------------------------------- *)

type writer = { fd : Unix.file_descr; path : string }

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos < len then go (pos + Unix.write fd bytes pos (len - pos))
  in
  go 0

let open_append ?truncate_at path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let size =
    (* Heal a torn tail before the first append: frames written after
       unverifiable garbage would be unreachable to every future scan, so
       the tail must go first.  [truncate_at] comes from {!scan}'s
       [valid_end] — everything past it already failed verification. *)
    match truncate_at with
    | Some at when at < size ->
      Unix.ftruncate fd at;
      at
    | _ -> size
  in
  if size < String.length magic then begin
    (* Fresh file, or a torn magic header: restart the journal. *)
    Unix.ftruncate fd 0;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    write_all fd magic;
    Unix.fsync fd
  end
  else ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; path }

let append w payload =
  write_all w.fd (frame payload);
  Unix.fsync w.fd

let close w = Unix.close w.fd

(* --- atomic rewrite ----------------------------------------------------------- *)

let fsync_dir dir =
  (* Make the rename itself durable.  Some filesystems refuse to fsync a
     directory fd; best-effort there — the data file is already synced. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let rewrite path payloads =
  let dir = Filename.dirname path in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd magic;
      List.iter (fun payload -> write_all fd (frame payload)) payloads;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir
