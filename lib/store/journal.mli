(** The append-only, crash-safe journal file underneath {!Store}.

    {b File format.}  An 8-byte magic header ["FLMJRNL1"], then zero or more
    frames.  Each frame is

    {v [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes] v}

    {b Crash safety.}  Appends write one whole frame and [fsync] before
    returning, so a record is either durable and verifiable or detectably
    absent.  A [kill -9] mid-append leaves a {e torn tail}: {!scan} detects
    it (declared length overruns the file, or the trailing CRC fails) and
    reports a typed {!Flm_error.Store_corrupt} instead of deserializing
    garbage.  A bit-flipped payload fails its CRC and is skipped, with the
    scan resuming at the next frame; a corrupted {e length} field desynchronizes
    framing, so the scan abandons the remainder of the file (one corruption
    report covers the lost tail) — {!Store.gc} rewrites a clean journal from
    the surviving records.

    {b Compaction} ({!rewrite}) follows the classic atomic-replace protocol:
    write every frame to a temp file in the same directory, [fsync] it,
    [rename] over the journal, then [fsync] the directory so the rename
    itself is durable.  A crash at any point leaves either the old complete
    journal or the new complete journal, never a mix. *)

val magic : string

type scan_result = {
  path : string;
  records : (int * string) list;
      (** [(offset, payload)] for every frame whose CRC verifies, in file
          order *)
  corruptions : Flm_error.t list;
      (** a typed report for every skipped or torn region *)
  valid_end : int;
      (** the offset just past the last structurally-sound frame: where a
          torn tail begins, or the file size when the tail is intact.
          Appending must resume {e here} — frames written after
          unverifiable garbage would be invisible to every future scan —
          so {!open_append} takes it as [truncate_at]. *)
}

val scan : string -> (scan_result, Flm_error.t) result
(** [scan path] reads the whole journal.  [Error _] only when the file
    exists but cannot be trusted at all (unreadable, or the magic header is
    not a — possibly kill-torn — prefix of {!magic}).  A missing or empty
    file is an empty store. *)

type writer

val open_append : ?truncate_at:int -> string -> writer
(** Open (creating, with the magic header, if missing or empty) for
    appending.  [truncate_at] (from {!scan}'s [valid_end]) first truncates
    away a torn tail so the next frame lands at a verifiable boundary.
    Raises [Unix.Unix_error] on filesystem failure. *)

val append : writer -> string -> unit
(** Frame the payload (length + CRC), write, and [fsync].  Thread-unsafe by
    itself; {!Store} serializes appends under its lock. *)

val close : writer -> unit

val rewrite : string -> string list -> unit
(** [rewrite path payloads] atomically replaces the journal at [path] with a
    fresh one containing exactly [payloads]: temp file + [fsync] + [rename]
    + directory [fsync]. *)
