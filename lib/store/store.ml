type t = {
  path : string;
  lock : Mutex.t;
  (* canonical encoded key bytes -> (key, payload); byte equality on the
     deterministic encoding is structural equality on keys, so the index is
     collision-proof by construction. *)
  index : (string, Value.t * Value.t) Hashtbl.t;
  mutable order : string list;  (* reverse first-insertion order *)
  mutable writer : Journal.writer option;
  mutable corruptions : Flm_error.t list;
  mutable frames : int;
  (* Where the journal's verifiable prefix ends (Journal.scan_result.
     valid_end); the first append truncates any torn tail back to here so
     new frames stay reachable.  None once a writer has been opened. *)
  mutable truncate_at : int option;
}

type stats = {
  path : string;
  live : int;
  records : int;
  corrupt : int;
  bytes : int;
}

let journal_name = "journal.flm"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let decode_frame path (offset, payload) =
  match Store_codec.decode_record payload with
  | key, value -> Ok (key, value)
  | exception Store_codec.Malformed detail ->
    Error (Flm_error.Store_corrupt { path; offset; detail })

let mkdir_p dir =
  match Unix.stat dir with
  | { Unix.st_kind = Unix.S_DIR; _ } -> Ok ()
  | _ ->
    Error
      (Flm_error.Invalid_input
         { what = "store directory"; detail = dir ^ " exists and is not a directory" })
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Flm_error.Invalid_input
           { what = "store directory";
             detail = dir ^ ": " ^ Unix.error_message e }))
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Flm_error.Invalid_input
         { what = "store directory"; detail = dir ^ ": " ^ Unix.error_message e })

let open_dir dir =
  match mkdir_p dir with
  | Error _ as e -> e
  | Ok () -> (
    let path = Filename.concat dir journal_name in
    match Journal.scan path with
    | Error _ as e -> e
    | Ok { Journal.records = frames; corruptions; valid_end; _ } ->
      let t =
        {
          path;
          lock = Mutex.create ();
          index = Hashtbl.create 256;
          order = [];
          writer = None;
          corruptions;
          frames = 0;
          truncate_at = Some valid_end;
        }
      in
      List.iter
        (fun frame ->
          t.frames <- t.frames + 1;
          match decode_frame path frame with
          | Ok (key, payload) ->
            let k = Store_codec.encode key in
            if not (Hashtbl.mem t.index k) then t.order <- k :: t.order;
            (* Last writer wins: a superseding record later in the journal
               replaces the payload, as it did in program order. *)
            Hashtbl.replace t.index k (key, payload)
          | Error e ->
            t.frames <- t.frames - 1;
            t.corruptions <- t.corruptions @ [ e ])
        frames;
      Ok t)

let find t key =
  with_lock t (fun () ->
      Option.map snd (Hashtbl.find_opt t.index (Store_codec.encode key)))

let mem t key =
  with_lock t (fun () -> Hashtbl.mem t.index (Store_codec.encode key))

let writer t =
  match t.writer with
  | Some w -> w
  | None ->
    let w = Journal.open_append ?truncate_at:t.truncate_at t.path in
    t.truncate_at <- None;
    t.writer <- Some w;
    w

let put t ~key payload =
  with_lock t (fun () ->
      let k = Store_codec.encode key in
      match Hashtbl.find_opt t.index k with
      | Some (_, existing) when Value.equal existing payload -> ()
      | previous ->
        Journal.append (writer t) (Store_codec.encode_record ~key ~payload);
        t.frames <- t.frames + 1;
        if previous = None then t.order <- k :: t.order;
        Hashtbl.replace t.index k (key, payload))

let length t = with_lock t (fun () -> Hashtbl.length t.index)
let corruptions t = with_lock t (fun () -> t.corruptions)

let live_in_order t =
  List.rev_map
    (fun k ->
      match Hashtbl.find_opt t.index k with
      | Some entry -> entry
      | None -> assert false)
    t.order

let iter t f =
  List.iter
    (fun (key, payload) -> f ~key ~payload)
    (with_lock t (fun () -> live_in_order t))

let stat t =
  with_lock t (fun () ->
      {
        path = t.path;
        live = Hashtbl.length t.index;
        records = t.frames;
        corrupt = List.length t.corruptions;
        bytes =
          (match Unix.stat t.path with
          | { Unix.st_size; _ } -> st_size
          | exception Unix.Unix_error _ -> 0);
      })

let gc ?(canonical = false) t =
  with_lock t (fun () ->
      (* The writer's fd would keep pointing at the replaced inode. *)
      Option.iter Journal.close t.writer;
      t.writer <- None;
      let keys = List.rev t.order in
      (* Canonical order: sorted by encoded key bytes.  Insertion order is
         an artifact of scheduling (which domain or shard finished first);
         sorting erases it, so two stores holding the same records compact
         to byte-identical journals. *)
      let keys = if canonical then List.sort String.compare keys else keys in
      let live =
        List.map
          (fun k ->
            match Hashtbl.find_opt t.index k with
            | Some entry -> entry
            | None -> assert false)
          keys
      in
      Journal.rewrite t.path
        (List.map
           (fun (key, payload) -> Store_codec.encode_record ~key ~payload)
           live);
      if canonical then t.order <- List.rev keys;
      let dropped = t.frames - List.length live in
      t.frames <- List.length live;
      t.corruptions <- [];
      t.truncate_at <- None;
      dropped)

(* Fold a foreign shard journal into this store.  The foreign journal is
   collapsed last-writer-wins first (mirroring [open_dir]'s scan), then its
   live records are [put] in foreign first-insertion order — so across the
   merge, the foreign shard is "later" than anything already present and
   wins conflicting keys, while equal payloads stay no-ops.  Corrupt
   foreign records are skipped and their typed reports appended to
   {!corruptions} (they name the foreign path). *)
let merge_from t dir =
  let path = Filename.concat dir journal_name in
  match Journal.scan path with
  | Error _ as e -> e
  | Ok { Journal.records = frames; corruptions = foreign_bad; _ } ->
    let index = Hashtbl.create 64 and order = ref [] and bad = ref foreign_bad in
    List.iter
      (fun frame ->
        match decode_frame path frame with
        | Ok (key, payload) ->
          let k = Store_codec.encode key in
          if not (Hashtbl.mem index k) then order := k :: !order;
          Hashtbl.replace index k (key, payload)
        | Error e -> bad := !bad @ [ e ])
      frames;
    (* [put] takes the lock per record; never call it while holding it. *)
    let folded = ref 0 in
    List.iter
      (fun k ->
        let key, payload = Hashtbl.find index k in
        put t ~key payload;
        incr folded)
      (List.rev !order);
    with_lock t (fun () -> t.corruptions <- t.corruptions @ !bad);
    Ok !folded

let close t =
  with_lock t (fun () ->
      Option.iter Journal.close t.writer;
      t.writer <- None)

let verify dir =
  let path = Filename.concat dir journal_name in
  match Journal.scan path with
  | Error _ as e -> e
  | Ok { Journal.records = frames; corruptions; _ } ->
    let ok = ref 0 and bad = ref [] in
    List.iter
      (fun frame ->
        match decode_frame path frame with
        | Ok _ -> incr ok
        | Error e -> bad := e :: !bad)
      frames;
    Ok (!ok, corruptions @ List.rev !bad)
