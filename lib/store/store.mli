(** The crash-safe, content-addressed certificate and result store.

    A store is a directory holding one append-only {!Journal}
    ([journal.flm]).  Records are [(key, payload)] pairs of {!Value.t}s,
    content-addressed by the {e canonical encoded bytes} of the key
    ({!Store_codec.encode} is deterministic, so byte equality is structural
    equality — a 64-bit fingerprint collision can never alias two keys).
    The engine keys records by job descriptors ({!Fingerprint} descriptors /
    [Job.describe]); the store itself is agnostic.

    {b Durability contract.}  {!put} returns only after the record is framed
    (length + CRC-32), written, and fsynced, so a completed cell survives
    [kill -9].  {!open_dir} scans the journal and {e skips} — never
    deserializes — any record it cannot verify (torn tail, CRC mismatch,
    unknown codec version), reporting each as a typed
    {!Flm_error.Store_corrupt} in {!corruptions}; a resumed sweep simply
    recomputes what was lost.  Duplicate keys are last-writer-wins on scan;
    {!put} of an already-stored equal payload is a no-op (no journal
    growth), so re-running a fully-checkpointed sweep does not write.

    All operations are serialized by an internal mutex: engine worker
    domains checkpoint concurrently. *)

type t

type stats = {
  path : string;  (** the journal file *)
  live : int;  (** distinct keys *)
  records : int;  (** verified frames in the journal (incl. superseded) *)
  corrupt : int;  (** corruption reports from the open scan *)
  bytes : int;  (** journal file size *)
}

val open_dir : string -> (t, Flm_error.t) result
(** Open (creating if needed) the store directory and scan its journal.
    Corrupt {e records} are skipped and reported via {!corruptions} — the
    store still opens.  [Error _] only when the directory cannot be used or
    the journal is not a journal at all (bad magic): nothing in it can be
    trusted. *)

val find : t -> Value.t -> Value.t option
val mem : t -> Value.t -> bool

val put : t -> key:Value.t -> Value.t -> unit
(** Durable once returned (fsync'd journal append).  Overwriting a key with
    a different payload appends a superseding record ({!gc} drops the old
    one); overwriting with an equal payload is a no-op. *)

val length : t -> int
(** Distinct live keys. *)

val corruptions : t -> Flm_error.t list
(** Typed reports for every record skipped when the store was opened. *)

val iter : t -> (key:Value.t -> payload:Value.t -> unit) -> unit
(** In first-insertion order (scan order, then put order) — deterministic,
    for [flm store export]. *)

val stat : t -> stats

val gc : ?canonical:bool -> t -> int
(** Compact: atomically rewrite the journal with exactly the live records
    (temp + fsync + rename, see {!Journal.rewrite}), dropping superseded and
    corrupt regions.  Returns the number of frames dropped.  Clears
    {!corruptions}.

    With [~canonical:true], live records are rewritten sorted by canonical
    encoded key bytes instead of first-insertion order.  Insertion order is
    a scheduling artifact (which worker finished first); canonical order
    erases it, so two stores holding the same records — e.g. a sharded
    campaign's merged store and a single-process run — compact to
    byte-identical journals.  Subsequent {!iter} follows the new order. *)

val merge_from : t -> string -> (int, Flm_error.t) result
(** [merge_from t dir] folds the journal of the foreign store directory
    [dir] into [t] with last-writer-wins semantics: the foreign journal is
    collapsed LWW on its own (exactly as {!open_dir} would), then each live
    foreign record is {!put} in foreign first-insertion order — foreign
    records supersede conflicting keys already in [t], and equal payloads
    are no-ops (no journal growth).  Returns the number of live foreign
    records folded.  Corrupt foreign records are skipped, their typed
    reports appended to {!corruptions}; [Error _] only when [dir]'s journal
    cannot be trusted at all (bad magic / unreadable), in which case [t] is
    untouched.  Merging is crash-safe: every fold step is a durable {!put},
    so a merge killed midway leaves [t] a valid prefix of the merge. *)

val close : t -> unit

val verify : string -> (int * Flm_error.t list, Flm_error.t) result
(** [verify dir] re-scans the journal from disk without opening a store:
    [Ok (verified_records, corruptions)] where [corruptions] includes both
    framing-level damage and records whose payload fails to decode. *)
