let version = 1

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* --- primitive writers ---------------------------------------------------- *)

let put_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then malformed "length %d out of u32 range" n;
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let put_i64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff))
  done

(* --- primitive readers ---------------------------------------------------- *)

let need s pos n what =
  if pos < 0 || pos + n > String.length s then
    malformed "truncated %s at offset %d" what pos

let get_u32 s pos =
  need s pos 4 "u32";
  let n = ref 0 in
  for i = 3 downto 0 do
    n := (!n lsl 8) lor Char.code s.[pos + i]
  done;
  !n, pos + 4

let get_i64 s pos =
  need s pos 8 "i64";
  let x = ref 0L in
  for i = 7 downto 0 do
    x := Int64.logor (Int64.shift_left !x 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !x, pos + 8

(* --- values ---------------------------------------------------------------- *)

(* One tag byte per constructor; every variable-length form carries a u32
   length, so the encoding is prefix-unambiguous and self-delimiting. *)
let rec encode_value buf (v : Value.t) =
  match v with
  | Value.Unit -> Buffer.add_char buf 'U'
  | Value.Bool b ->
    Buffer.add_char buf 'B';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int i ->
    Buffer.add_char buf 'I';
    put_i64 buf (Int64.of_int i)
  | Value.Float f ->
    Buffer.add_char buf 'F';
    put_i64 buf (Int64.bits_of_float f)
  | Value.String s ->
    Buffer.add_char buf 'S';
    put_u32 buf (String.length s);
    Buffer.add_string buf s
  | Value.Pair (a, b) ->
    Buffer.add_char buf 'P';
    encode_value buf a;
    encode_value buf b
  | Value.List vs ->
    Buffer.add_char buf 'L';
    put_u32 buf (List.length vs);
    List.iter (encode_value buf) vs
  | Value.Tag (c, payload) ->
    Buffer.add_char buf 'T';
    put_u32 buf (String.length c);
    Buffer.add_string buf c;
    encode_value buf payload

let encode v =
  let buf = Buffer.create 64 in
  encode_value buf v;
  Buffer.contents buf

let rec decode_value s pos =
  need s pos 1 "tag";
  match s.[pos] with
  | 'U' -> Value.Unit, pos + 1
  | 'B' ->
    need s (pos + 1) 1 "bool";
    (match s.[pos + 1] with
    | '\000' -> Value.Bool false, pos + 2
    | '\001' -> Value.Bool true, pos + 2
    | c -> malformed "bad bool byte %#x at offset %d" (Char.code c) (pos + 1))
  | 'I' ->
    let x, pos = get_i64 s (pos + 1) in
    Value.Int (Int64.to_int x), pos
  | 'F' ->
    let x, pos = get_i64 s (pos + 1) in
    Value.Float (Int64.float_of_bits x), pos
  | 'S' ->
    let n, pos = get_u32 s (pos + 1) in
    need s pos n "string body";
    Value.String (String.sub s pos n), pos + n
  | 'P' ->
    let a, pos = decode_value s (pos + 1) in
    let b, pos = decode_value s pos in
    Value.Pair (a, b), pos
  | 'L' ->
    let n, pos = get_u32 s (pos + 1) in
    let rec go acc pos k =
      if k = 0 then List.rev acc, pos
      else
        let v, pos = decode_value s pos in
        go (v :: acc) pos (k - 1)
    in
    let vs, pos = go [] pos n in
    Value.List vs, pos
  | 'T' ->
    let n, pos = get_u32 s (pos + 1) in
    need s pos n "tag name";
    let c = String.sub s pos n in
    let payload, pos = decode_value s (pos + n) in
    Value.Tag (c, payload), pos
  | c -> malformed "unknown tag byte %#x at offset %d" (Char.code c) pos

let decode s =
  let v, pos = decode_value s 0 in
  if pos <> String.length s then
    malformed "trailing garbage: %d bytes after value" (String.length s - pos);
  v

(* --- records ---------------------------------------------------------------- *)

let encode_record ~key ~payload =
  let buf = Buffer.create 128 in
  Buffer.add_char buf (Char.chr version);
  encode_value buf key;
  encode_value buf payload;
  Buffer.contents buf

let decode_record s =
  need s 0 1 "record version";
  let v = Char.code s.[0] in
  if v <> version then malformed "unsupported record version %d" v;
  let key, pos = decode_value s 1 in
  let payload, pos = decode_value s pos in
  if pos <> String.length s then
    malformed "trailing garbage: %d bytes after record" (String.length s - pos);
  key, payload
