(** The versioned binary codec for {!Value.t} — the serialization the
    certificate store journals to disk.

    The encoding is canonical and deterministic: one tag byte per
    constructor, fixed 8-byte little-endian integers (and float bits), and a
    4-byte little-endian length prefix on every variable-length form.  Equal
    values therefore encode to equal byte strings, which is what lets the
    store content-address records by their encoded key bytes, and what makes
    "byte-identical verdicts" a meaningful property for resumed sweeps.

    Record payloads additionally carry a leading format-version byte
    ({!version}); a record written by a future incompatible format is
    rejected as malformed rather than misread. *)

val version : int
(** The current record-format version (1). *)

exception Malformed of string
(** Raised by the decoders on truncated input, an unknown tag byte, a length
    that overruns the buffer, or trailing garbage.  The journal layer turns
    it into a typed {!Flm_error.Store_corrupt}. *)

val encode_value : Buffer.t -> Value.t -> unit
val encode : Value.t -> string

val decode : string -> Value.t
(** Decode a whole string ([encode] round-trips); raises {!Malformed} unless
    the input is exactly one well-formed value. *)

val encode_record : key:Value.t -> payload:Value.t -> string
(** [version byte][encoded key][encoded payload] — the journal's record
    payload. *)

val decode_record : string -> Value.t * Value.t
(** Inverse of {!encode_record}; raises {!Malformed} on a version mismatch
    or a malformed body. *)
