let from_traces ~name sources =
  let sends =
    Array.of_list
      (List.map
         (fun (trace, src, dst) -> Trace.edge_behavior trace ~src ~dst)
         sources)
  in
  Device.replay ~name ~sends

let from_trace trace ~name ~schedule =
  from_traces ~name (List.map (fun (src, dst) -> trace, src, dst) schedule)

let silent ~arity = Device.silent ~name:"faulty-silent" ~arity

let crash ~after (honest : Device.t) =
  let arity = honest.Device.arity in
  {
    honest with
    Device.name = Printf.sprintf "crash@%d(%s)" after honest.Device.name;
    step =
      (fun ~state ~round ~inbox ->
        if round < after then honest.Device.step ~state ~round ~inbox
        else state, Array.make arity None);
    output = (fun _ -> None);
  }

let split_brain (honest : Device.t) ~inputs =
  let arity = honest.Device.arity in
  if Array.length inputs <> arity then
    invalid_arg "Adversary.split_brain: one input per port required";
  let variants =
    Array.of_list (List.sort_uniq Value.compare (Array.to_list inputs))
  in
  let variant_of_port =
    Array.map
      (fun v ->
        let rec find i =
          if Value.equal variants.(i) v then i else find (i + 1)
        in
        find 0)
      inputs
  in
  {
    Device.name = Printf.sprintf "split-brain(%s)" honest.Device.name;
    arity;
    init =
      (fun ~input:_ ->
        Value.list
          (Array.to_list (Array.map (fun v -> honest.Device.init ~input:v) variants)));
    step =
      (fun ~state ~round ~inbox ->
        let sub_states = Array.of_list (Value.get_list state) in
        let stepped =
          Array.map
            (fun s -> honest.Device.step ~state:s ~round ~inbox)
            sub_states
        in
        let state' = Value.list (Array.to_list (Array.map fst stepped)) in
        let sends =
          Array.init arity (fun j -> (snd stepped.(variant_of_port.(j))).(j))
        in
        state', sends);
    output = (fun _ -> None);
  }

let babbler ~seed ~palette ~arity =
  let palette = Array.of_list palette in
  if Array.length palette = 0 then invalid_arg "Adversary.babbler: empty palette";
  {
    Device.name = "babbler";
    arity;
    init = (fun ~input:_ -> Value.unit);
    step =
      (fun ~state ~round ~inbox:_ ->
        (* Deterministic pseudo-random choice per (seed, round, port): the
           system keeps a single behavior, as the model requires. *)
        let pick j =
          (* flm-lint: allow locality/hashtbl-hash — hashing a triple of
             immediate ints is structure-stable, and (seed, round, j) are
             all explicit inputs: the babbler stays one deterministic
             behavior per seed, exactly what the model requires *)
          let h = Hashtbl.hash (seed, round, j) in
          if h mod 3 = 0 then None
          else Some palette.(h mod Array.length palette)
        in
        state, Array.init arity pick);
    output = (fun _ -> None);
  }

let mutate (honest : Device.t) ~rewrite =
  {
    honest with
    Device.name = Printf.sprintf "mutate(%s)" honest.Device.name;
    step =
      (fun ~state ~round ~inbox ->
        let state', sends = honest.Device.step ~state ~round ~inbox in
        state', Array.mapi (fun port m -> rewrite ~port ~round m) sends);
    output = (fun _ -> None);
  }
