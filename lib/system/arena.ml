(* Per-execution flat trace storage.  One arena holds everything a run
   records: an intern table plus two int bigarray planes (states and sent
   messages, stored as intern ids) and a presence bitset over the sent
   plane.  The executor writes ids; the trace accessors decode them back
   through the intern table, so readers see values structurally identical
   to the boxed path.

   Layout:
   - [states]: n × (rounds+1), index [u * (rounds+1) + r].
   - [sent]: total_ports × rounds, index [(port_off.(u) + j) * rounds + r] —
     round-contiguous per directed edge, the stride edge-behavior readers
     walk.
   - [present]: one bit per sent slot.  Id 0 already encodes absence; the
     bitset exists so presence-only queries (message counts, delivered-or-
     silent scans) never touch the id plane or the intern table, and so a
     byte of it summarizes eight slots for popcount-style statistics. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  intern : Value_intern.t;
  n : int;
  rounds : int;
  port_off : int array;  (* length n+1; prefix sums of per-node arity *)
  states : ints;
  sent : ints;
  present : Bytes.t;
}

let ints len : ints =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max len 1) in
  Bigarray.Array1.fill a Value_intern.absent;
  a

let create ~n ~rounds ~arity =
  if n < 0 then invalid_arg "Arena.create: n >= 0 required";
  if rounds < 0 then invalid_arg "Arena.create: rounds >= 0 required";
  let port_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let a = arity u in
    if a < 0 then invalid_arg "Arena.create: negative arity";
    port_off.(u + 1) <- port_off.(u) + a
  done;
  let total_ports = port_off.(n) in
  {
    intern = Value_intern.create ();
    n;
    rounds;
    port_off;
    states = ints (n * (rounds + 1));
    sent = ints (total_ports * rounds);
    present = Bytes.make (((total_ports * rounds) + 7) / 8) '\000';
  }

let n t = t.n
let rounds t = t.rounds
let arity t u = t.port_off.(u + 1) - t.port_off.(u)
let interned t = Value_intern.count t.intern

let state_index t u r =
  if u < 0 || u >= t.n then invalid_arg "Arena: node out of range";
  if r < 0 || r > t.rounds then invalid_arg "Arena: round out of range";
  (u * (t.rounds + 1)) + r

let sent_index t u ~port ~round =
  if u < 0 || u >= t.n then invalid_arg "Arena: node out of range";
  if port < 0 || port >= arity t u then invalid_arg "Arena: port out of range";
  if round < 0 || round >= t.rounds then invalid_arg "Arena: round out of range";
  ((t.port_off.(u) + port) * t.rounds) + round

let set_state t u r v =
  Bigarray.Array1.unsafe_set t.states (state_index t u r)
    (Value_intern.intern t.intern v)

let state t u r =
  Value_intern.value t.intern
    (Bigarray.Array1.unsafe_get t.states (state_index t u r))

let mark_present t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.present byte
    (Char.chr (Char.code (Bytes.unsafe_get t.present byte) lor (1 lsl bit)))

let slot_present t i =
  Char.code (Bytes.unsafe_get t.present (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_sent t u ~port ~round v =
  let i = sent_index t u ~port ~round in
  match v with
  | None -> ()  (* slots start absent; the executor writes each slot once *)
  | Some v ->
    Bigarray.Array1.unsafe_set t.sent i (Value_intern.intern t.intern v);
    mark_present t i

let sent_present t u ~port ~round = slot_present t (sent_index t u ~port ~round)

let sent t u ~port ~round =
  let i = sent_index t u ~port ~round in
  if slot_present t i then
    Some (Value_intern.value t.intern (Bigarray.Array1.unsafe_get t.sent i))
  else None

(* Popcount over the presence bytes: the id plane and intern table are never
   touched. *)
let message_count t =
  let count = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr count
      done)
    t.present;
  !count

(* Iterate present messages as (sender, value); used by the trace's message
   statistics.  Order: sender-major, then port, then round. *)
let iter_messages f t =
  for u = 0 to t.n - 1 do
    for port = 0 to arity t u - 1 do
      let base = (t.port_off.(u) + port) * t.rounds in
      for round = 0 to t.rounds - 1 do
        let i = base + round in
        if slot_present t i then
          f u
            (Value_intern.value t.intern (Bigarray.Array1.unsafe_get t.sent i))
      done
    done
  done
