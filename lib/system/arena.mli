(** Per-execution flat trace storage: an intern table plus int bigarray
    planes for states and sent messages, and a presence bitset over the
    sent plane.

    The executor writes intern ids; readers decode through the table, so a
    flat trace is structurally indistinguishable from the boxed
    representation it replaces ({!Trace} dispatches between the two).  One
    arena belongs to one execution on one domain; it is not thread-safe.

    The presence bitset is the port map for presence-only questions: a
    silent slot is a zero bit, message counting is a popcount over bytes,
    and no decode happens.  *)

type t

val create : n:int -> rounds:int -> arity:(int -> int) -> t
(** [arity u] is node [u]'s port count (its degree). *)

val n : t -> int
val rounds : t -> int
val arity : t -> int -> int

val set_state : t -> int -> int -> Value.t -> unit
(** [set_state a u r v]: state of node [u] after [r] steps, [r] in
    [0..rounds]. *)

val state : t -> int -> int -> Value.t

val set_sent : t -> int -> port:int -> round:int -> Value.t option -> unit
(** [round] in [0..rounds-1].  Slots start absent; [None] is a no-op. *)

val sent : t -> int -> port:int -> round:int -> Value.t option

val sent_present : t -> int -> port:int -> round:int -> bool
(** Bitset probe: no id read, no decode. *)

val message_count : t -> int
(** Popcount of the presence bitset. *)

val iter_messages : (int -> Value.t -> unit) -> t -> unit
(** Present messages as (sender, value); sender-major, then port, then
    round. *)

val interned : t -> int
(** Distinct values interned by this execution. *)
