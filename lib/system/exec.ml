let runs_started = Atomic.make 0

let total_runs () = Atomic.get runs_started

let run ?(signed = false) ?(delay = 1) sys ~rounds =
  if rounds < 0 then invalid_arg "Exec.run: negative horizon";
  Atomic.incr runs_started;
  if delay < 1 then invalid_arg "Exec.run: delay >= 1 required";
  let graph = System.graph sys in
  let n = Graph.n graph in
  let ledger = if signed then Some (Signature.ledger_create ~nodes:n) else None in
  let states =
    Array.init n (fun u ->
        let s = Array.make (rounds + 1) Value.unit in
        s.(0) <- (System.device sys u).Device.init ~input:(System.input sys u);
        s)
  in
  let sent =
    Array.init n (fun u ->
        Array.make_matrix rounds (Array.length (System.wiring sys u)) None)
  in
  (* back_port.(u).(j): the port on which wiring(u).(j) reaches back to u —
     precomputed once on the system (wiring never changes). *)
  let back_port = System.back_ports sys in
  (* One inbox scratch array per node, refilled every round: the executor's
     hottest allocation used to be a fresh n-deep array-of-arrays per round.
     Reuse is safe because devices are pure step functions — they read the
     inbox during [step] and never retain it (their state is an immutable
     [Value.t]). *)
  let inboxes =
    Array.init n (fun u -> Array.make (Array.length (System.wiring sys u)) None)
  in
  for r = 0 to rounds - 1 do
    (* Cooperative deadline check, once per simulated round: a run whose job
       carries a deadline (see Flm_error.Deadline) aborts with a typed
       timeout instead of running away.  A single domain-local read when no
       deadline is installed. *)
    Flm_error.Deadline.check ();
    (* Absorb this round's deliveries into the signature ledgers first, so a
       signature received now may be relayed now. *)
    for u = 0 to n - 1 do
      let wiring = System.wiring sys u in
      let inbox = inboxes.(u) in
      for j = 0 to Array.length wiring - 1 do
        inbox.(j) <-
          (if r < delay then None
           else sent.(wiring.(j)).(r - delay).(back_port.(u).(j)))
      done
    done;
    (match ledger with
    | None -> ()
    | Some ledger ->
      Array.iteri
        (fun u inbox ->
          Array.iter
            (function
              | Some m -> Signature.absorb ledger ~node:u m
              | None -> ())
            inbox)
        inboxes);
    for u = 0 to n - 1 do
      let state', sends =
        Device.step_checked (System.device sys u) ~state:states.(u).(r)
          ~round:r ~inbox:inboxes.(u)
      in
      let sends =
        match ledger with
        | None -> sends
        | Some ledger ->
          Array.map (Option.map (Signature.sanitize ledger ~node:u)) sends
      in
      states.(u).(r + 1) <- state';
      sent.(u).(r) <- sends
    done
  done;
  Trace.make ~system:sys ~rounds ~states ~sent

let run_until_decided ?signed ?delay sys ~max_rounds =
  if max_rounds < 1 then invalid_arg "Exec.run_until_decided: horizon >= 1";
  (* Doubling search keeps total work linear in the final horizon while
     reusing the pure executor. *)
  let all_decided trace =
    List.for_all
      (fun u -> Trace.decision trace u <> None)
      (Graph.nodes (System.graph sys))
  in
  let rec attempt horizon =
    let t = run ?signed ?delay sys ~rounds:horizon in
    if all_decided t || horizon >= max_rounds then t
    else attempt (min max_rounds (2 * horizon))
  in
  attempt (min max_rounds 4)
