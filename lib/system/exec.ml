(* flm-lint: allow locality/mutable-state — [runs_started] is a monotone
   telemetry counter behind [total_runs]; no execution ever reads it, so it
   cannot feed nondeterminism back into a run *)
let runs_started = Atomic.make 0

let total_runs () = Atomic.get runs_started

(* The boxed executor is the differential baseline: [with_boxed_for_testing]
   flips a domain-local flag and the dispatcher below routes to it, so the
   perf-smoke suite can run the same job on both representations and compare
   certificates byte for byte.  Same save/restore idiom as
   [Flm_error.Deadline]. *)
let boxed_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let with_boxed_for_testing f =
  let saved = Domain.DLS.get boxed_key in
  Domain.DLS.set boxed_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set boxed_key saved) f

let run_boxed ~signed ~delay sys ~rounds =
  let graph = System.graph sys in
  let n = Graph.n graph in
  let ledger = if signed then Some (Signature.ledger_create ~nodes:n) else None in
  let states =
    Array.init n (fun u ->
        let s = Array.make (rounds + 1) Value.unit in
        s.(0) <- (System.device sys u).Device.init ~input:(System.input sys u);
        s)
  in
  let sent =
    Array.init n (fun u ->
        Array.make_matrix rounds (Array.length (System.wiring sys u)) None)
  in
  (* back_port.(u).(j): the port on which wiring(u).(j) reaches back to u —
     precomputed once on the system (wiring never changes). *)
  let back_port = System.back_ports sys in
  let inboxes =
    Array.init n (fun u -> Array.make (Array.length (System.wiring sys u)) None)
  in
  for r = 0 to rounds - 1 do
    (* Cooperative deadline check, once per simulated round: a run whose job
       carries a deadline (see Flm_error.Deadline) aborts with a typed
       timeout instead of running away.  A single domain-local read when no
       deadline is installed. *)
    Flm_error.Deadline.check ();
    (* Absorb this round's deliveries into the signature ledgers first, so a
       signature received now may be relayed now. *)
    for u = 0 to n - 1 do
      let wiring = System.wiring sys u in
      let inbox = inboxes.(u) in
      for j = 0 to Array.length wiring - 1 do
        inbox.(j) <-
          (if r < delay then None
           else sent.(wiring.(j)).(r - delay).(back_port.(u).(j)))
      done
    done;
    (match ledger with
    | None -> ()
    | Some ledger ->
      Array.iteri
        (fun u inbox ->
          Array.iter
            (function
              | Some m -> Signature.absorb ledger ~node:u m
              | None -> ())
            inbox)
        inboxes);
    for u = 0 to n - 1 do
      let state', sends =
        Device.step_checked (System.device sys u) ~state:states.(u).(r)
          ~round:r ~inbox:inboxes.(u)
      in
      let sends =
        match ledger with
        | None -> sends
        | Some ledger ->
          Array.map (Option.map (Signature.sanitize ledger ~node:u)) sends
      in
      states.(u).(r + 1) <- state';
      sent.(u).(r) <- sends
    done
  done;
  Trace.make ~system:sys ~rounds ~states ~sent

(* The flat executor: same round loop, but states and sends land in a
   per-execution arena as intern ids, and the inbox rows are per-domain
   scratch reused across runs.  Devices still exchange ordinary values —
   interning happens at the arena boundary, and because the intern table
   hands back the first structurally-equal value it saw, a decoded trace is
   byte-identical to what the boxed path records. *)
let run_flat ~signed ~delay sys ~rounds =
  let graph = System.graph sys in
  let n = Graph.n graph in
  let ledger = if signed then Some (Signature.ledger_create ~nodes:n) else None in
  let arity u = Array.length (System.wiring sys u) in
  let arena = Arena.create ~n ~rounds ~arity in
  for u = 0 to n - 1 do
    Arena.set_state arena u 0
      ((System.device sys u).Device.init ~input:(System.input sys u))
  done;
  let back_port = System.back_ports sys in
  let arities = Array.init n arity in
  Exec_scratch.with_inboxes ~arities (fun inboxes ->
      for r = 0 to rounds - 1 do
        Flm_error.Deadline.check ();
        for u = 0 to n - 1 do
          let wiring = System.wiring sys u in
          let inbox = inboxes.(u) in
          for j = 0 to Array.length wiring - 1 do
            inbox.(j) <-
              (if r < delay then None
               else
                 Arena.sent arena wiring.(j) ~port:back_port.(u).(j)
                   ~round:(r - delay))
          done
        done;
        (match ledger with
        | None -> ()
        | Some ledger ->
          Array.iteri
            (fun u inbox ->
              Array.iter
                (function
                  | Some m -> Signature.absorb ledger ~node:u m
                  | None -> ())
                inbox)
            inboxes);
        for u = 0 to n - 1 do
          let state', sends =
            Device.step_checked (System.device sys u)
              ~state:(Arena.state arena u r) ~round:r ~inbox:inboxes.(u)
          in
          let sends =
            match ledger with
            | None -> sends
            | Some ledger ->
              Array.map (Option.map (Signature.sanitize ledger ~node:u)) sends
          in
          Arena.set_state arena u (r + 1) state';
          Array.iteri
            (fun port v -> Arena.set_sent arena u ~port ~round:r v)
            sends
        done
      done);
  Trace.of_arena ~system:sys ~rounds arena

let run ?(signed = false) ?(delay = 1) sys ~rounds =
  if rounds < 0 then invalid_arg "Exec.run: negative horizon";
  if delay < 1 then invalid_arg "Exec.run: delay >= 1 required";
  Atomic.incr runs_started;
  if Domain.DLS.get boxed_key then run_boxed ~signed ~delay sys ~rounds
  else run_flat ~signed ~delay sys ~rounds

let run_until_decided ?signed ?delay sys ~max_rounds =
  if max_rounds < 1 then invalid_arg "Exec.run_until_decided: horizon >= 1";
  (* Doubling search keeps total work linear in the final horizon while
     reusing the pure executor. *)
  let all_decided trace =
    List.for_all
      (fun u -> Trace.decision trace u <> None)
      (Graph.nodes (System.graph sys))
  in
  let rec attempt horizon =
    let t = run ?signed ?delay sys ~rounds:horizon in
    if all_decided t || horizon >= max_rounds then t
    else attempt (min max_rounds (2 * horizon))
  in
  attempt (min max_rounds 4)
