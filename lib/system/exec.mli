(** The synchronous executor.

    Round semantics: in round [r] every device consumes the messages sent in
    round [r-1] (nothing in round 0) and emits messages for round [r+1].
    Delivery therefore takes exactly one round — this is the δ of the
    Bounded-Delay Locality axiom.

    Determinism: a system has exactly one behavior; [run] is a pure function
    of the system and the horizon.

    With [~signed:true] the executor enforces the ideal signature
    functionality of {!Signature}: outgoing messages have every signature the
    sender does not legitimately hold replaced by {!Signature.forged}.  This
    deliberately {e breaks} the Fault axiom — replay devices can no longer
    masquerade — and is how the signed protocols escape the impossibility
    bound (experiment E13). *)

val total_runs : unit -> int
(** Number of [run] invocations so far in this process, across all domains
    (a monotone atomic counter).  The engine's metrics report executions as
    deltas of this counter. *)

val run : ?signed:bool -> ?delay:int -> System.t -> rounds:int -> Trace.t
(** [delay] (default 1): rounds a message spends in flight — the
    Bounded-Delay δ.  A message sent in round [r] is delivered in round
    [r + delay]; devices' round counters are unaffected, so a protocol
    designed for δ = 1 simply sees a slower network. *)

val run_until_decided :
  ?signed:bool -> ?delay:int -> System.t -> max_rounds:int -> Trace.t
(** Runs until every node has decided (per its device's [output]) or the
    horizon is reached, whichever comes first; the returned trace always has
    at least one round. *)

val with_boxed_for_testing : (unit -> 'a) -> 'a
(** Runs [f] with this domain's executions routed to the legacy boxed
    storage path instead of the flat arena.  The two paths produce
    observationally identical traces — this hook exists so the differential
    suite and the benchmarks can hold the executor to that, and so the flat
    path's cost can be measured against a faithful baseline.  Domain-local
    and re-entrant; restores the previous setting on exit. *)
