(* Per-domain scratch buffers reused across executions.  The executor's
   per-run setup used to allocate one inbox array per node per run; sweeps
   run thousands of same-shaped systems back to back, so the arrays are
   cached in domain-local storage keyed by the system's arity profile and
   handed out for the duration of one run.

   Safety: devices read the inbox during [step] and never retain it (their
   state is an immutable value), every slot is refilled each round before
   any device reads it, and the buffers are domain-local — two domains
   never share a row.  [with_inboxes] marks the cache in-use for its
   extent, so a nested or re-entrant execution on the same domain falls
   back to fresh arrays instead of aliasing live ones; rows are cleared on
   release so scratch never keeps a finished trace's messages alive. *)

type cache = {
  mutable arities : int array;
  mutable rows : Value.t option array array;
  mutable in_use : bool;
}

let key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { arities = [||]; rows = [||]; in_use = false })

(* Rows are exactly arity-sized: [Device.step_checked] rejects an inbox
   whose length differs from the device's arity. *)
let fresh arities = Array.map (fun a -> Array.make a None) arities

let with_inboxes ~arities f =
  let cache = Domain.DLS.get key in
  if cache.in_use then f (fresh arities)
  else begin
    if cache.arities <> arities then begin
      cache.arities <- Array.copy arities;
      cache.rows <- fresh arities
    end;
    cache.in_use <- true;
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun row -> Array.fill row 0 (Array.length row) None)
          cache.rows;
        cache.in_use <- false)
      (fun () -> f cache.rows)
  end
