(** Per-domain inbox scratch reused across executions.

    [with_inboxes ~arities f] passes [f] an array of per-node inbox rows
    ([rows.(u)] has length [arities.(u)]), borrowed from a domain-local
    cache when the arity profile matches the previous run on this domain
    (the common case in sweeps) and freshly allocated otherwise.  The
    cache is marked in-use for the extent of [f], so re-entrant
    executions degrade to fresh arrays rather than aliasing; rows are
    cleared on release.  Callers must not retain the rows past [f]. *)

val with_inboxes :
  arities:int array -> (Value.t option array array -> 'a) -> 'a
