type assignment = {
  device : Device.t;
  input : Value.t;
  wiring : Graph.node array;
}

type t = {
  graph : Graph.t;
  assign : assignment array;
  back_ports : int array array;
}

let validate graph assign =
  Array.iteri
    (fun u { device; wiring; _ } ->
      let nbrs = Graph.neighbors graph u in
      let deg = List.length nbrs in
      if device.Device.arity <> deg then
        invalid_arg
          (Printf.sprintf
             "System: device %s at node %d has arity %d, degree is %d"
             device.Device.name u device.Device.arity deg);
      if Array.length wiring <> deg then
        invalid_arg
          (Printf.sprintf "System: node %d wiring size %d, degree %d" u
             (Array.length wiring) deg);
      let sorted = List.sort Int.compare (Array.to_list wiring) in
      if sorted <> nbrs then
        invalid_arg
          (Printf.sprintf "System: node %d wiring is not a permutation of its \
                           neighbors" u))
    assign

(* back_ports.(u).(j): the port on which wiring(u).(j) reaches back to u.
   Wiring is fixed at construction (substitutions swap devices and inputs
   only), so this inverse is computed once per system instead of once per
   execution — it was the executor's hottest setup cost. *)
let compute_back_ports assign =
  let port_on v u =
    let w = assign.(v).wiring in
    let rec find j =
      if j >= Array.length w then assert false (* validate: wiring symmetric *)
      else if w.(j) = u then j
      else find (j + 1)
    in
    find 0
  in
  Array.mapi
    (fun u { wiring; _ } -> Array.map (fun v -> port_on v u) wiring)
    assign

let make graph assign_fn =
  let assign =
    Array.init (Graph.n graph) (fun u ->
        let device, input = assign_fn u in
        let wiring = Array.of_list (Graph.neighbors graph u) in
        { device; input; wiring })
  in
  validate graph assign;
  { graph; assign; back_ports = compute_back_ports assign }

let of_covering c ~device ~input =
  let graph = c.Covering.source in
  let assign =
    Array.init (Graph.n graph) (fun u ->
        {
          device = device (Covering.apply c u);
          input = input u;
          wiring = Covering.wiring c u;
        })
  in
  validate graph assign;
  { graph; assign; back_ports = compute_back_ports assign }

let substitute sys u device =
  let old = sys.assign.(u) in
  if device.Device.arity <> old.device.Device.arity then
    invalid_arg "System.substitute: arity mismatch";
  let assign = Array.copy sys.assign in
  assign.(u) <- { old with device };
  { sys with assign }

let substitute_input sys u input =
  let assign = Array.copy sys.assign in
  assign.(u) <- { assign.(u) with input };
  { sys with assign }

let graph sys = sys.graph
let back_ports sys = sys.back_ports
let device sys u = sys.assign.(u).device
let input sys u = sys.assign.(u).input
let wiring sys u = sys.assign.(u).wiring

let port_to sys u v =
  let w = sys.assign.(u).wiring in
  let rec find j =
    if j >= Array.length w then raise Not_found
    else if w.(j) = v then j
    else find (j + 1)
  in
  find 0
