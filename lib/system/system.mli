(** Systems: a communication graph with a device, an input, and a port wiring
    at every node.

    The wiring realizes the covering-map installation: port [j] of the device
    at node [u] is connected to the neighbor [wiring.(j)] of [u].  For a
    system built directly on a graph, port [j] is simply the [j]-th (sorted)
    neighbor; for a system built from a covering, port [j] is the unique
    neighbor lying over the [j]-th neighbor of [φ u]. *)

type assignment = {
  device : Device.t;
  input : Value.t;
  wiring : Graph.node array;
      (** [wiring.(port)] = neighbor this port connects to; a permutation of
          the node's neighbor list. *)
}

type t = private {
  graph : Graph.t;
  assign : assignment array;
  back_ports : int array array;
      (** [back_ports.(u).(j)] = the port on which [wiring.(u).(j)] reaches
          back to [u]; precomputed at construction (wiring never changes). *)
}

val make : Graph.t -> (Graph.node -> Device.t * Value.t) -> t
(** Natural wiring: port [j] ↦ [j]-th sorted neighbor.  Checks that each
    device's arity equals its node's degree. *)

val of_covering :
  Covering.t ->
  device:(Graph.node -> Device.t) ->
  input:(Graph.node -> Value.t) ->
  t
(** [of_covering c ~device ~input] installs [device (φ u)] at every node [u]
    of the covering's source graph, wired through the covering map, with
    input [input u] ([input] is per {e source} node — the constructions give
    different copies different inputs). *)

val substitute : t -> Graph.node -> Device.t -> t
(** Replace one node's device (e.g. by a faulty one), keeping wiring and
    input.  The new device must have the same arity. *)

val substitute_input : t -> Graph.node -> Value.t -> t

val graph : t -> Graph.t
val device : t -> Graph.node -> Device.t
val input : t -> Graph.node -> Value.t
val wiring : t -> Graph.node -> Graph.node array

val port_to : t -> Graph.node -> Graph.node -> int
(** [port_to sys u v] is the port of [u] wired to neighbor [v];
    raises [Not_found] if [v] is not a neighbor of [u]. *)

val back_ports : t -> int array array
(** The precomputed inverse wiring ([back_ports.(u).(j)] =
    [port_to sys wiring.(u).(j) u]), shared across substitutions.  The
    executor's per-run setup reads it instead of rebuilding the inverse with
    [port_to] searches.  Callers must not mutate it. *)
