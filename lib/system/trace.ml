(* Two storage representations, one behavior.  [Boxed] is the historical
   per-round boxed layout, kept verbatim as the differential baseline
   ({!Exec.with_boxed_for_testing}); [Flat] decodes out of a per-execution
   {!Arena}.  Every accessor dispatches, and because the arena interns on
   structural equality, the two representations are observationally
   byte-identical — the property the certificate machinery and the store's
   byte-identity guarantees lean on.

   Flat traces additionally memoize each node's (decision, decision round):
   locating a decision replays device outputs round by round, and the
   problem specs ask for it several times per node per check.  Boxed traces
   deliberately keep the uncached scan so the legacy path measures (and
   behaves) exactly as it used to. *)

type repr =
  | Boxed of {
      states : Value.t array array;
      sent : Value.t option array array array;
    }
  | Flat of Arena.t

type t = {
  system : System.t;
  rounds : int;
  repr : repr;
  decided : (Value.t option * int option) option array;
      (* per-node memo; [||] on boxed traces (never consulted) *)
}

let make ~system ~rounds ~states ~sent =
  let n = Graph.n (System.graph system) in
  if Array.length states <> n || Array.length sent <> n then
    invalid_arg "Trace.make: wrong node count";
  Array.iteri
    (fun u s ->
      if Array.length s <> rounds + 1 then
        invalid_arg (Printf.sprintf "Trace.make: node %d has %d states" u (Array.length s)))
    states;
  Array.iteri
    (fun u s ->
      if Array.length s <> rounds then
        invalid_arg (Printf.sprintf "Trace.make: node %d has %d send rows" u (Array.length s)))
    sent;
  { system; rounds; repr = Boxed { states; sent }; decided = [||] }

let of_arena ~system ~rounds arena =
  let n = Graph.n (System.graph system) in
  if Arena.n arena <> n then invalid_arg "Trace.of_arena: wrong node count";
  if Arena.rounds arena <> rounds then
    invalid_arg "Trace.of_arena: wrong horizon";
  { system; rounds; repr = Flat arena; decided = Array.make n None }

let rounds t = t.rounds
let system t = t.system

let state t u r =
  match t.repr with
  | Boxed { states; _ } -> states.(u).(r)
  | Flat arena -> Arena.state arena u r

let raw_sent t u ~port ~round =
  match t.repr with
  | Boxed { sent; _ } -> sent.(u).(round).(port)
  | Flat arena -> Arena.sent arena u ~port ~round

let node_behavior t u =
  match t.repr with
  | Boxed { states; _ } -> Array.copy states.(u)
  | Flat arena -> Array.init (t.rounds + 1) (fun r -> Arena.state arena u r)

let edge_behavior t ~src ~dst =
  let port = System.port_to t.system src dst in
  Array.init t.rounds (fun r -> raw_sent t src ~port ~round:r)

let delivered t ~dst ~round =
  let wiring = System.wiring t.system dst in
  Array.init (Array.length wiring) (fun j ->
      if round = 0 then None
      else begin
        let v = wiring.(j) in
        let back = System.port_to t.system v dst in
        raw_sent t v ~port:back ~round:(round - 1)
      end)

let output t u ~round = (System.device t.system u).Device.output (state t u round)

let scan_decision t u =
  let rec scan r =
    if r > t.rounds then None
    else
      match output t u ~round:r with
      | Some v -> Some (v, r)
      | None -> scan (r + 1)
  in
  scan 0

let decided t u =
  if Array.length t.decided = 0 then
    (* Legacy boxed trace: uncached scan, exactly the historical behavior. *)
    match scan_decision t u with
    | None -> None, None
    | Some (v, r) -> Some v, Some r
  else
    match t.decided.(u) with
    | Some memo -> memo
    | None ->
      let memo =
        match scan_decision t u with
        | None -> None, None
        | Some (v, r) -> Some v, Some r
      in
      (* Idempotent write: a racing domain computes the same memo. *)
      t.decided.(u) <- Some memo;
      memo

let decision t u = fst (decided t u)
let decision_round t u = snd (decided t u)

let border_behaviors t nodes =
  List.map
    (fun (src, dst) -> (src, dst), edge_behavior t ~src ~dst)
    (Graph.inedge_border (System.graph t.system) nodes)

let pp ppf t =
  Format.fprintf ppf "@[<v>trace (%d rounds)" t.rounds;
  List.iter
    (fun u ->
      Format.fprintf ppf "@ node %d [%s] input=%a decision=%a" u
        (System.device t.system u).Device.name Value.pp
        (System.input t.system u) Value.pp_opt (decision t u))
    (Graph.nodes (System.graph t.system));
  Format.fprintf ppf "@]"

let value_size v =
  let rec go acc = function
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ -> acc + 1
    | Value.String s -> acc + 1 + (String.length s / 8)
    | Value.Pair (a, b) -> go (go (acc + 1) a) b
    | Value.List vs -> List.fold_left go (acc + 1) vs
    | Value.Tag (_, p) -> go (acc + 1) p
  in
  go 0 v

let fold_messages f acc t =
  match t.repr with
  | Boxed { sent; _ } ->
    let acc = ref acc in
    Array.iteri
      (fun u rounds ->
        Array.iter
          (fun ports ->
            Array.iter
              (function Some v -> acc := f !acc u v | None -> ())
              ports)
          rounds)
      sent;
    !acc
  | Flat arena ->
    let acc = ref acc in
    Arena.iter_messages (fun u v -> acc := f !acc u v) arena;
    !acc

let message_count t =
  match t.repr with
  | Boxed _ -> fold_messages (fun acc _ _ -> acc + 1) 0 t
  | Flat arena -> Arena.message_count arena

let message_volume t = fold_messages (fun acc _ v -> acc + value_size v) 0 t

let messages_by_node t =
  let counts = Array.make (Graph.n (System.graph t.system)) 0 in
  ignore
    (fold_messages
       (fun () u _ ->
         counts.(u) <- counts.(u) + 1)
       () t);
  counts
