(** Traces: the behavior of a system.

    A system has exactly one behavior (devices are deterministic).  A trace
    records, for every node, its state sequence (the paper's {e node
    behavior}) and, for every directed edge, the message sequence crossing it
    (the {e edge behavior}).

    Two storage representations exist behind this interface: the historical
    boxed layout ({!make}) and the flat arena layout ({!of_arena}).  All
    accessors answer identically on both — the differential suite holds the
    executor to that. *)

type t

val make :
  system:System.t ->
  rounds:int ->
  states:Value.t array array ->
  sent:Value.t option array array array ->
  t
(** Boxed trace over per-round value matrices; [states.(u).(r)] for [r] in
    [0..rounds], [sent.(u).(r).(port)] for [r] in [0..rounds-1].  Used by
    the executor's legacy path; validates dimensions. *)

val of_arena : system:System.t -> rounds:int -> Arena.t -> t
(** Flat trace over a filled execution arena; validates shape. *)

val rounds : t -> int
val system : t -> System.t

val node_behavior : t -> Graph.node -> Value.t array

val edge_behavior : t -> src:Graph.node -> dst:Graph.node -> Value.t option array
(** Messages sent by [src] to [dst], one slot per round.  Raises [Not_found]
    if there is no such edge. *)

val delivered : t -> dst:Graph.node -> round:int -> Value.t option array
(** The inbox (per port of [dst]) delivered at [round] — messages sent in
    [round - 1]; all-[None] at round 0. *)

val output : t -> Graph.node -> round:int -> Value.t option
(** The node's CHOOSE output in its state after [round] steps. *)

val decision : t -> Graph.node -> Value.t option
(** First output that becomes [Some].  Memoized on flat traces. *)

val decision_round : t -> Graph.node -> int option
(** Number of steps after which the decision first appears. *)

val border_behaviors :
  t -> Graph.node list -> ((Graph.node * Graph.node) * Value.t option array) list
(** Edge behaviors of the inedge border of a node set. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering: per node, name/input/decision; used by examples. *)

(** {1 Statistics} *)

val message_count : t -> int
(** Total messages sent (non-silent port-round slots); a bitset popcount on
    flat traces. *)

val message_volume : t -> int
(** Total size of all messages, in abstract value units: one unit per
    constructor, plus one per 8 bytes of string payload. *)

val messages_by_node : t -> int array
