(* Hash-consing table mapping values to small dense integer ids, used by the
   flat execution arena: per-round states and messages are stored as ids in
   int bigarrays instead of boxed values.  Structural equality is the
   interning key ([Value.equal]), so decoding an id yields a value
   structurally identical to the one stored — which is what keeps flat
   traces byte-identical to the boxed path.

   Id 0 is reserved for "absent" ([intern_opt None]); real ids start at 1
   and [value] rejects 0.  The table is single-owner (one arena, one
   execution, one domain) and is not thread-safe. *)

(* Structural FNV-1a-style hash.  [Hashtbl.hash] is depth- and
   width-truncated, which collapses the deep tree states the executor
   interns every round into a handful of buckets; this fold visits the
   whole value.  Only values under the smallness bound below are hashed, so
   the traversal is bounded. *)
let fnv_prime = 0x100000001b3

let step h x = (h lxor x) * fnv_prime land max_int

let step_string h s =
  let h = ref (step h (String.length s)) in
  String.iter (fun c -> h := step !h (Char.code c)) s;
  !h

(* Normalized to match [Value.equal] on floats ([Float.equal]): every NaN is
   equal to every other NaN, and -0. equals 0. *)
let float_bits f =
  if f <> f then 0x7ff8_dead
  else Int64.to_int (Int64.bits_of_float (if f = 0.0 then 0.0 else f))

let rec fold_hash h v =
  match v with
  | Value.Unit -> step h 1
  | Value.Bool b -> step (step h 2) (Bool.to_int b)
  | Value.Int i -> step (step h 3) i
  | Value.Float f -> step (step h 4) (float_bits f)
  | Value.String s -> step_string (step h 5) s
  | Value.Pair (a, b) -> fold_hash (fold_hash (step h 6) a) b
  | Value.List vs -> List.fold_left fold_hash (step h 7) vs
  | Value.Tag (c, p) -> fold_hash (step_string (step h 8) c) p

let hash v = fold_hash 0x1505 v

(* Dedup heuristic.  Hash-consing pays when a value recurs (round markers,
   decisions, small payloads repeated across nodes and rounds) and costs a
   full traversal when it does not.  Protocol states grow with the round —
   an EIG tree at round r holds O(n^r) labels — and are unique per (node,
   round), so structurally hashing them buys nothing and turns the executor
   quadratic in the value size.  The bound below caps the probe: values
   whose constructor count stays under [small_limit] go through the dedup
   table; larger ones are appended directly (the one-slot physical fast
   path still dedups the broadcast-same-payload-to-every-port pattern,
   which shares one boxed value across ports).  Either way [value] hands
   back the first physical value stored, so trace decoding is unaffected. *)
let small_limit = 64

(* Remaining budget after traversing [v]; positive iff [v] has fewer than
   [limit] constructors.  The traversal itself is cut off at the bound. *)
let rec budget_after limit v =
  if limit <= 0 then 0
  else
    match v with
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _
    | Value.String _ ->
      limit - 1
    | Value.Pair (a, b) -> budget_after (budget_after (limit - 1) a) b
    | Value.List vs -> List.fold_left budget_after (limit - 1) vs
    | Value.Tag (_, p) -> budget_after (limit - 1) p

let is_small v = budget_after small_limit v > 0

module Table = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = hash
end)

type t = {
  mutable values : Value.t array;  (* id -> value; slot 0 is the absent id *)
  mutable count : int;  (* next free id; ids handed out so far = count - 1 *)
  table : int Table.t;
  (* One-slot physical-equality fast path: the executor interns the same
     payload once per port and the same state value on repeated decodes, so
     a pointer-equal repeat skips the structural hash entirely. *)
  mutable last_value : Value.t;
  mutable last_id : int;
}

let absent = 0

let create ?(initial_capacity = 256) () =
  {
    values = Array.make (max 2 initial_capacity) Value.unit;
    count = 1;
    table = Table.create (max 2 initial_capacity);
    last_value = Value.unit;
    last_id = absent;
  }

let count t = t.count - 1

let append t v =
  let id = t.count in
  if id = Array.length t.values then begin
    let grown = Array.make (2 * id) Value.unit in
    Array.blit t.values 0 grown 0 id;
    t.values <- grown
  end;
  t.values.(id) <- v;
  t.count <- id + 1;
  id

let intern t v =
  if t.last_id <> absent && t.last_value == v then t.last_id
  else begin
    let id =
      if is_small v then
        match Table.find_opt t.table v with
        | Some id -> id
        | None ->
          let id = append t v in
          Table.add t.table v id;
          id
      else append t v
    in
    t.last_value <- v;
    t.last_id <- id;
    id
  end

let intern_opt t = function None -> absent | Some v -> intern t v

let value t id =
  if id <= absent || id >= t.count then
    invalid_arg (Printf.sprintf "Value_intern.value: id %d out of range" id);
  t.values.(id)

let value_opt t id = if id = absent then None else Some (value t id)
