(** Hash-consing of {!Value.t} into small dense integer ids.

    The flat execution arena ({!Arena} in [lib/system]) stores per-round
    node states and messages as ids in int bigarrays; this table is the
    id ⇄ value boundary.  Small values dedup on structural equality
    ([Value.equal], with a full-depth structural hash rather than the
    truncated [Hashtbl.hash]); values past a size bound — protocol states
    that grow with the round and never recur — are appended without the
    traversal.  Either way [value t (intern t v)] is the first physical
    value stored for [v]'s id and is structurally identical to [v] — the
    property that keeps flat traces byte-identical to the boxed execution
    path.

    Id [0] is reserved to mean "absent" (a silent port-round slot); real
    ids are dense from 1.  A table belongs to one execution on one domain
    and is not thread-safe. *)

type t

val absent : int
(** The reserved id [0]; never returned by {!intern}. *)

val create : ?initial_capacity:int -> unit -> t

val intern : t -> Value.t -> int
(** The id of [v], allocating a fresh one on first sight.  Pointer-equal
    repeats (the common case: one payload fanned out to every port, one
    state decoded repeatedly) short-circuit without hashing; small values
    additionally dedup structurally. *)

val intern_opt : t -> Value.t option -> int
(** [None] maps to {!absent}. *)

val value : t -> int -> Value.t
(** Raises [Invalid_argument] on {!absent} or an id never handed out. *)

val value_opt : t -> int -> Value.t option

val count : t -> int
(** Distinct values interned so far. *)
