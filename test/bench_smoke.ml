(* The machine-readable bench contract, wired into @runtest via the
   @bench-smoke alias: run E18 at a tiny configuration, then check that the
   emitted BENCH_E18.json parses and satisfies the schema the README
   documents (experiment id, config, runs with label/jobs/wall_seconds).
   Also exercises the JSON round-trip on a synthetic record so a printer or
   parser regression fails here, not in a long bench run. *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "bench-smoke FAILED: %s\n" what
  end

let roundtrip () =
  let record =
    Bench_json.bench_record ~experiment:"E0"
      ~config:[ "n_max", Bench_json.Int 4; "note", Bench_json.String "a\"b\n" ]
      ~derived:[ "speedup", Bench_json.Float 1.5 ]
      ~runs:
        [ Bench_json.run_record ~label:"one" ~jobs:1 ~wall_seconds:0.25
            ~cache_hit_rate:0.5
            ~extra:[ "empty", Bench_json.List []; "null", Bench_json.Null ]
            ();
        ]
      ()
  in
  (match Bench_json.parse (Bench_json.to_string record) with
  | Ok reparsed ->
    check "round-trip preserves the record" (reparsed = record);
    check "round-trip validates" (Bench_json.validate reparsed = Ok ())
  | Error m -> check (Printf.sprintf "round-trip parses (%s)" m) false);
  check "validate rejects a record without runs"
    (Bench_json.validate (Bench_json.Obj [ "experiment", Bench_json.String "x" ])
    <> Ok ());
  check "parse rejects trailing garbage"
    (match Bench_json.parse "{} junk" with Ok _ -> false | Error _ -> true)

(* `flm lint --format json` speaks the same dialect: the report built on
   Bench_json must survive print-then-parse with its fields intact. *)
let lint_report_roundtrip () =
  let findings, _ =
    Flm_lint.check_source ~path:"lib/protocols/fixture.ml"
      "let coin () = Random.int 2"
  in
  let report = { Lint_report.findings; suppressed = 2; files = 7 } in
  match Bench_json.parse (Lint_report.json_string report) with
  | Error m -> check (Printf.sprintf "lint JSON parses (%s)" m) false
  | Ok json ->
    check "lint JSON: tool"
      (Option.bind (Bench_json.member "tool" json) Bench_json.to_string_opt
      = Some "flm-lint");
    check "lint JSON: files"
      (Option.bind (Bench_json.member "files" json) Bench_json.to_int_opt
      = Some 7);
    check "lint JSON: suppressed"
      (Option.bind (Bench_json.member "suppressed" json) Bench_json.to_int_opt
      = Some 2);
    check "lint JSON: the finding's rule survives"
      (match
         Option.bind (Bench_json.member "findings" json) Bench_json.to_list_opt
       with
      | Some [ f ] ->
        Option.bind (Bench_json.member "rule" f) Bench_json.to_string_opt
        = Some "locality/random"
      | _ -> false)

let e18_tiny () =
  let out =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_bench_smoke_%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let returned =
        Bench_e18.run ~out ~n_max:4 ~f_max:1 ~jobs_list:[ 1; 2 ] ~batches:3 ()
      in
      let contents =
        let ic = open_in out in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Bench_json.parse contents with
      | Error m -> check (Printf.sprintf "BENCH_E18.json parses (%s)" m) false
      | Ok json ->
        check "file matches the returned record" (json = returned);
        (match Bench_json.validate json with
        | Ok () -> ()
        | Error m ->
          check (Printf.sprintf "BENCH_E18.json validates (%s)" m) false);
        check "experiment id is E18"
          (Option.bind (Bench_json.member "experiment" json)
             Bench_json.to_string_opt
          = Some "E18");
        let runs =
          Option.value ~default:[]
            (Option.bind (Bench_json.member "runs" json) Bench_json.to_list_opt)
        in
        (* One cold + one warm run per jobs count, plus the two pool-overhead
           runs. *)
        check "runs: cold/warm per jobs count + pool overhead pair"
          (List.length runs = (2 * 2) + 2);
        check "every configured jobs count appears"
          (List.for_all
             (fun j ->
               List.exists
                 (fun r ->
                   Option.bind (Bench_json.member "jobs" r) Bench_json.to_int_opt
                   = Some j)
                 runs)
             [ 1; 2 ]);
        check "derived pool_reuse_speedup present"
          (Option.bind (Bench_json.member "derived" json) (fun d ->
               Option.bind
                 (Bench_json.member "pool_reuse_speedup" d)
                 Bench_json.to_float_opt)
          <> None))

let () =
  roundtrip ();
  lint_report_roundtrip ();
  e18_tiny ();
  if !failures > 0 then begin
    Printf.eprintf "bench-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "bench-smoke ok: JSON round-trip + tiny E18 contract"
