(* The machine-readable bench contract, wired into @runtest via the
   @bench-smoke alias: run E18 and E22 at tiny configurations, then check
   that the emitted records parse and satisfy the schema the README
   documents (experiment id, config, runs with label/jobs/wall_seconds).
   Also exercises the JSON round-trip on a synthetic record so a printer or
   parser regression fails here, not in a long bench run. *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "bench-smoke FAILED: %s\n" what
  end

let roundtrip () =
  let record =
    Bench_json.bench_record ~experiment:"E0"
      ~config:[ "n_max", Bench_json.Int 4; "note", Bench_json.String "a\"b\n" ]
      ~derived:[ "speedup", Bench_json.Float 1.5 ]
      ~runs:
        [ Bench_json.run_record ~label:"one" ~jobs:1 ~wall_seconds:0.25
            ~cache_hit_rate:0.5
            ~extra:[ "empty", Bench_json.List []; "null", Bench_json.Null ]
            ();
        ]
      ()
  in
  (match Bench_json.parse (Bench_json.to_string record) with
  | Ok reparsed ->
    check "round-trip preserves the record" (reparsed = record);
    check "round-trip validates" (Bench_json.validate reparsed = Ok ())
  | Error m -> check (Printf.sprintf "round-trip parses (%s)" m) false);
  check "validate rejects a record without runs"
    (Bench_json.validate (Bench_json.Obj [ "experiment", Bench_json.String "x" ])
    <> Ok ());
  check "parse rejects trailing garbage"
    (match Bench_json.parse "{} junk" with Ok _ -> false | Error _ -> true);
  (* Timings quantized with [quantize_us] print as fixed-point literals;
     unquantized floats still print in scientific %.17g form.  The strict
     parser must accept both spellings and read back the same float. *)
  let float_of src =
    match Bench_json.parse src with
    | Ok (Bench_json.Obj [ ("x", v) ]) -> Bench_json.to_float_opt v
    | _ -> None
  in
  check "parser accepts fixed-point float literals"
    (float_of "{\"x\": 0.123457}" = Some 0.123457);
  check "parser accepts scientific float literals"
    (float_of "{\"x\": 1.2345699999999999e-1}" = Some 0.12345699999999999);
  check "both spellings of the same float read back equal"
    (float_of "{\"x\": 0.250000}" = float_of "{\"x\": 2.5e-1}");
  check "quantized timings serialize as microsecond fixed-point"
    (Bench_json.to_string (Bench_json.Float (Bench_json.quantize_us 0.123456789))
    = "0.123457\n");
  check "unquantizable magnitudes pass through quantize_us"
    (Bench_json.quantize_us 2.5e12 = 2.5e12);
  check "quantized round-trip is exact"
    (let f = Bench_json.quantize_us 1.6180339887 in
     float_of (Printf.sprintf "{\"x\": %s}" (String.trim (Bench_json.to_string (Bench_json.Float f))))
     = Some f)

(* `flm lint --format json` speaks the same dialect: the report built on
   Bench_json must survive print-then-parse with its fields intact. *)
let lint_report_roundtrip () =
  let findings, _ =
    Flm_lint.check_source ~path:"lib/protocols/fixture.ml"
      "let coin () = Random.int 2"
  in
  let report = Lint_report.make ~findings ~suppressed:2 ~files:7 () in
  match Bench_json.parse (Lint_report.json_string report) with
  | Error m -> check (Printf.sprintf "lint JSON parses (%s)" m) false
  | Ok json ->
    check "lint JSON: tool"
      (Option.bind (Bench_json.member "tool" json) Bench_json.to_string_opt
      = Some "flm-lint");
    check "lint JSON: files"
      (Option.bind (Bench_json.member "files" json) Bench_json.to_int_opt
      = Some 7);
    check "lint JSON: suppressed"
      (Option.bind (Bench_json.member "suppressed" json) Bench_json.to_int_opt
      = Some 2);
    check "lint JSON: the finding's rule survives"
      (match
         Option.bind (Bench_json.member "findings" json) Bench_json.to_list_opt
       with
      | Some [ f ] ->
        Option.bind (Bench_json.member "rule" f) Bench_json.to_string_opt
        = Some "locality/random"
      | _ -> false)

let e18_tiny () =
  let out =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_bench_smoke_%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let returned =
        Bench_e18.run ~out ~n_max:4 ~f_max:1 ~jobs_list:[ 1; 2 ] ~batches:3 ()
      in
      let contents =
        let ic = open_in out in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Bench_json.parse contents with
      | Error m -> check (Printf.sprintf "BENCH_E18.json parses (%s)" m) false
      | Ok json ->
        check "file matches the returned record" (json = returned);
        (match Bench_json.validate json with
        | Ok () -> ()
        | Error m ->
          check (Printf.sprintf "BENCH_E18.json validates (%s)" m) false);
        check "experiment id is E18"
          (Option.bind (Bench_json.member "experiment" json)
             Bench_json.to_string_opt
          = Some "E18");
        let runs =
          Option.value ~default:[]
            (Option.bind (Bench_json.member "runs" json) Bench_json.to_list_opt)
        in
        (* One cold + one warm run per jobs count, plus the two pool-overhead
           runs. *)
        check "runs: cold/warm per jobs count + pool overhead pair"
          (List.length runs = (2 * 2) + 2);
        check "every configured jobs count appears"
          (List.for_all
             (fun j ->
               List.exists
                 (fun r ->
                   Option.bind (Bench_json.member "jobs" r) Bench_json.to_int_opt
                   = Some j)
                 runs)
             [ 1; 2 ]);
        check "derived pool_reuse_speedup present"
          (Option.bind (Bench_json.member "derived" json) (fun d ->
               Option.bind
                 (Bench_json.member "pool_reuse_speedup" d)
                 Bench_json.to_float_opt)
          <> None))

let e22_tiny () =
  let json =
    Bench_e22.run ~baseline_execs_per_sec:38.7 ~n_max:4 ~f_max:1
      ~jobs_list:[ 1; 2 ] ()
  in
  (match Bench_json.validate json with
  | Ok () -> ()
  | Error m -> check (Printf.sprintf "E22 record validates (%s)" m) false);
  let derived_bool field =
    match
      Option.bind (Bench_json.member "derived" json) (Bench_json.member field)
    with
    | Some (Bench_json.Bool b) -> Some b
    | _ -> None
  in
  check "E22: flat and boxed verdicts agree on the tiny grid"
    (derived_bool "verdicts_equal" = Some true);
  check "E22: the speedup criterion is met or relaxed on a single core"
    (derived_bool "jobs_speedup_ok" = Some true);
  check "E22: cores recorded in config"
    (Option.bind (Bench_json.member "config" json) (fun c ->
         Option.bind (Bench_json.member "cores" c) Bench_json.to_int_opt)
    = Some (Domain.recommended_domain_count ()))

let e23_tiny () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_bench_smoke_e23_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name contents =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "caller.ml" "let go v = Callee.mix v\n";
  write "callee.ml" "let mix v = v + 1\n";
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let json = Bench_e23.run ~paths:[ dir ] () in
      (match Bench_json.validate json with
      | Ok () -> ()
      | Error m -> check (Printf.sprintf "E23 record validates (%s)" m) false);
      check "E23: experiment id"
        (Option.bind (Bench_json.member "experiment" json)
           Bench_json.to_string_opt
        = Some "E23");
      let runs =
        Option.value ~default:[]
          (Option.bind (Bench_json.member "runs" json) Bench_json.to_list_opt)
      in
      check "E23: one cold and one warm pass"
        (List.map
           (fun r ->
             Option.bind (Bench_json.member "label" r) Bench_json.to_string_opt)
           runs
        = [ Some "cold"; Some "warm" ]);
      check "E23: the warm pass is all cache hits"
        (match runs with
        | [ _; warm ] ->
          Option.bind (Bench_json.member "cache_misses" warm)
            Bench_json.to_int_opt
          = Some 0
          && Option.bind (Bench_json.member "cache_hits" warm)
               Bench_json.to_int_opt
             = Some 2
        | _ -> false);
      let derived field =
        Option.bind (Bench_json.member "derived" json) (Bench_json.member field)
      in
      check "E23: the cache is observationally invisible"
        (derived "findings_equal" = Some (Bench_json.Bool true));
      check "E23: warm hit rate is 1"
        (derived "warm_hit_rate" = Some (Bench_json.Float 1.0)))

let () =
  roundtrip ();
  lint_report_roundtrip ();
  e18_tiny ();
  e22_tiny ();
  e23_tiny ();
  if !failures > 0 then begin
    Printf.eprintf "bench-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "bench-smoke ok: JSON round-trip + tiny E18/E22/E23 contracts"
