(* End-to-end smoke of the campaign driver, forking a real worker fleet:

   - a tiny cube (2 protocols x 3 strategies, Mobile included, over the
     (n, f) grid on two families) sharded across 3 forked workers runs to
     completion with every shard Ok;
   - determinism: the merged, canonically-compacted journal is
     byte-identical to the same cube run in a single process (workers=1);
   - failure mining: the seeded cube is known to violate, so the corpus
     must hold entries, every entry must replay from its recorded seed to
     the recorded outcome, and every minimized scenario must be no larger
     than the original on any axis while still reproducing a violation;
   - idempotence: re-running the campaign resumes from the journals —
     no new corpus entries, journal bytes unchanged.

   Forked mode must run while this process is single-domain, so the two
   sharded runs come first and the in-process reference run (which spawns
   engine domains) last.

   Run via the @campaign-smoke alias (wired into @runtest). *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "campaign_smoke: FAIL: %s\n%!" m;
      exit 1)
    fmt

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_campaign_smoke_%s_%d" name (Unix.getpid ()))
  in
  rm_rf d;
  d

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let journal dir = read_file (Filename.concat dir "journal.flm")

let spec ~workers =
  match
    Campaign_spec.make ~name:"smoke" ~seed:7 ~trials:4 ~workers
      ~protocols:[ "eig"; "flood-vote" ]
      ~strategies:[ "equivocate"; "corrupt:1"; "mobile:0.9" ]
      ~families:[ "complete"; "cycle" ] ~n_max:4 ~f_max:2 ()
  with
  | Ok t -> t
  | Error e -> fail "spec: %s" (Flm_error.to_string e)

let run_campaign ~dir spec =
  match Campaign.run ~dir spec with
  | Ok summary -> summary
  | Error e -> fail "campaign run: %s" (Flm_error.to_string e)

let () =
  let sharded = spec ~workers:3 in
  let dir_sharded = fresh_dir "sharded" in
  let dir_solo = fresh_dir "solo" in

  (* (a) The sharded run: every shard finishes Ok, the cube's trials all
     land in the merged store, and the known-violating cube yields a
     mined, minimized corpus. *)
  let s = run_campaign ~dir:dir_sharded sharded in
  if s.Campaign.interrupted then fail "sharded run reports interrupted";
  if List.length s.Campaign.shards <> 3 then
    fail "expected 3 shard reports, got %d" (List.length s.Campaign.shards);
  List.iter
    (fun r ->
      match r.Campaign.result with
      | Ok () -> ()
      | Error e ->
        fail "shard %d failed: %s" r.Campaign.shard (Flm_error.to_string e))
    s.Campaign.shards;
  if s.Campaign.failed <> 0 then fail "%d cells failed" s.Campaign.failed;
  if s.Campaign.skipped = 0 then
    fail "the cube should skip inapplicable eig cells";
  if s.Campaign.survived + s.Campaign.violated <> s.Campaign.total then
    fail "%d survived + %d violated <> %d cells" s.Campaign.survived
      s.Campaign.violated s.Campaign.total;
  if s.Campaign.violated = 0 then fail "the seeded cube should violate";
  if s.Campaign.corpus_new <> s.Campaign.violated then
    fail "every violated cell should mint a corpus entry (%d of %d)"
      s.Campaign.corpus_new s.Campaign.violated;
  if s.Campaign.minimized <> s.Campaign.corpus then
    fail "every corpus entry should carry a minimized scenario (%d of %d)"
      s.Campaign.minimized s.Campaign.corpus;
  Printf.printf
    "campaign_smoke: sharded: %d cells (%d skipped) over 3 workers, %d \
     violated, %d corpus entries minimized\n%!"
    s.Campaign.total s.Campaign.skipped s.Campaign.violated s.Campaign.corpus;

  (* (b) Idempotence: a re-run resumes from the shard journals — nothing
     recomputed differently, no new corpus entries, journal untouched. *)
  let before = journal dir_sharded in
  let s2 = run_campaign ~dir:dir_sharded sharded in
  if s2.Campaign.corpus_new <> 0 then
    fail "re-run minted %d new corpus entries" s2.Campaign.corpus_new;
  if journal dir_sharded <> before then fail "re-run changed the journal";
  Printf.printf "campaign_smoke: re-run resumed: 0 new entries, journal \
                 byte-stable\n%!";

  (* (c) The corpus contract: every entry replays from its recorded seed,
     and every minimized scenario is monotone and still violating. *)
  let corpus =
    match Campaign_corpus.open_dir dir_sharded with
    | Ok c -> c
    | Error e -> fail "open corpus: %s" (Flm_error.to_string e)
  in
  let entries = Campaign_corpus.entries corpus in
  if List.length entries <> s.Campaign.corpus then
    fail "corpus store holds %d entries, summary says %d"
      (List.length entries) s.Campaign.corpus;
  let mobile_seen = ref false in
  List.iter
    (fun e ->
      if e.Campaign_corpus.strategy = "mobile:0.9" then mobile_seen := true;
      (match Campaign_corpus.replay e with
      | Ok outcome ->
        if outcome <> e.Campaign_corpus.outcome then
          fail "replay diverged for trial %d" e.Campaign_corpus.trial
      | Error err ->
        fail "replay failed for trial %d: %s" e.Campaign_corpus.trial
          (Flm_error.to_string err));
      match e.Campaign_corpus.minimized with
      | None -> fail "entry for trial %d lacks a minimized scenario"
                  e.Campaign_corpus.trial
      | Some scenario ->
        let original =
          Campaign_shrink.size_of (Campaign_corpus.scenario_of e)
        in
        let shrunk = Campaign_shrink.size_of scenario in
        if
          shrunk.Campaign_shrink.rounds > original.Campaign_shrink.rounds
          || shrunk.Campaign_shrink.nodes > original.Campaign_shrink.nodes
          || shrunk.Campaign_shrink.actions > original.Campaign_shrink.actions
        then fail "minimized scenario grew for trial %d" e.Campaign_corpus.trial;
        let outcome = Job.campaign_scenario scenario in
        if outcome.Job.survived then
          fail "minimized scenario no longer violates for trial %d"
            e.Campaign_corpus.trial)
    entries;
  Store.close corpus;
  if not !mobile_seen then
    fail "the seeded cube should mine a mobile-strategy failure";
  Printf.printf
    "campaign_smoke: corpus: %d entries (mobile among them) replayed from \
     their seeds, all minimized scenarios monotone and violating\n%!"
    (List.length entries);

  (* (d) Byte-identity: the same cube in a single process (no forks, the
     engine in this very process) compacts to the identical journal. *)
  let solo = run_campaign ~dir:dir_solo (spec ~workers:1) in
  if solo.Campaign.shards <> [] then fail "solo run should not fork shards";
  if solo.Campaign.violated <> s.Campaign.violated then
    fail "solo run violated %d, sharded %d" solo.Campaign.violated
      s.Campaign.violated;
  if journal dir_solo <> journal dir_sharded then
    fail "sharded and single-process journals are not byte-identical";
  Printf.printf
    "campaign_smoke: sharded (3 workers) and single-process journals \
     byte-identical (%d bytes)\n%!"
    (String.length (journal dir_solo));

  rm_rf dir_sharded;
  rm_rf dir_solo;
  print_endline "campaign_smoke: OK"
