(* The CLI's exit-code contract: every typed Flm_error class surfaces as
   its own stable non-zero code (Flm_error.exit_code), and success is 0 —
   so driver scripts can dispatch on $? without parsing output.  Runs the
   real binary (argv.(1)) end to end.

   Run via the @cli-codes alias (wired into @runtest). *)

let failures = ref 0

let devnull () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0

let run_exe exe args =
  let out = devnull () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin out out
  in
  let _, status = Unix.waitpid [] pid in
  Unix.close out;
  match status with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
    Printf.eprintf "cli_codes: %s ended by signal %d\n%!"
      (String.concat " " args) s;
    255

let expect exe what code args =
  let got = run_exe exe args in
  if got = code then
    Printf.printf "cli_codes: ok: %-28s -> %d\n%!" what got
  else begin
    incr failures;
    Printf.eprintf "cli_codes: FAIL: %s: expected exit %d, got %d (flm %s)\n%!"
      what code got (String.concat " " args)
  end

let flip_byte path off =
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

let () =
  let exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else (
      prerr_endline "usage: cli_codes FLM_BINARY";
      exit 2)
  in
  let expect what code args = expect exe what code args in
  expect "success is 0" 0 [ "graph"; "-g"; "complete:4" ];
  (* Invalid_input (10): certifying an adequate graph, and chaos with f=0. *)
  expect "Invalid_input: adequate cert" 10
    [ "certify"; "ba"; "-n"; "4"; "--f"; "1" ];
  expect "Invalid_input: chaos f=0" 10
    [ "chaos"; "-g"; "complete:4"; "--f"; "0"; "--trials"; "1" ];
  (* Job_failed (11): the poison strategy raises mid-step. *)
  expect "Job_failed: poison chaos" 11
    [ "chaos"; "-g"; "complete:4"; "--f"; "1"; "--strategy"; "poison";
      "--trials"; "2" ];
  (* Job_timeout (12): a 1 ms deadline on a real certificate. *)
  expect "Job_timeout: 1ms deadline" 12
    [ "certify"; "ba"; "-n"; "6"; "--f"; "2"; "--timeout-ms"; "1" ];
  (* Store_corrupt (15): verify over a deliberately damaged journal. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_cli_codes_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  expect "sweep --store succeeds" 0
    [ "sweep"; "--n-max"; "5"; "--f-max"; "1"; "--store"; dir; "-j"; "1" ];
  expect "store verify: clean" 0 [ "store"; "verify"; dir ];
  flip_byte (Filename.concat dir "journal.flm") 17;
  expect "Store_corrupt: store verify" 15 [ "store"; "verify"; dir ];
  (* A --resume sweep over the damaged store recovers and exits 0. *)
  expect "sweep --resume recovers" 0
    [ "sweep"; "--n-max"; "5"; "--f-max"; "1"; "--store"; dir; "--resume";
      "-j"; "1" ];
  expect "store gc succeeds" 0 [ "store"; "gc"; dir ];
  expect "store verify: clean after gc" 0 [ "store"; "verify"; dir ];
  (* Net (16): no daemon behind the socket path, and a socket path whose
     parent directory cannot exist. *)
  expect "Net: query, nothing listening" 16
    [ "query"; "stats"; "--socket"; Filename.concat dir "no-daemon.sock" ];
  expect "Net: serve, unbindable socket" 16
    [ "serve"; "--socket"; Filename.concat dir "missing/dir/s.sock";
      "--quiet"; "-j"; "1" ];
  (* Net (16) after the retry budget: the resilience flags retry the
     connect, then surface the same typed class and code. *)
  expect "Net: ping with retries" 16
    [ "query"; "ping"; "--socket"; Filename.concat dir "no-daemon.sock";
      "--retries"; "2"; "--backoff-ms"; "1"; "--deadline-ms"; "2000" ];
  (* An over-long socket path is refused client-side with the same code,
     in both query and serve. *)
  let long_path = "/tmp/" ^ String.make 120 'x' ^ ".sock" in
  expect "Net: query, over-long socket path" 16
    [ "query"; "ping"; "--socket"; long_path ];
  expect "Net: serve, over-long socket path" 16
    [ "serve"; "--socket"; long_path; "--quiet"; "-j"; "1" ];
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then exit 1;
  print_endline "cli_codes: OK"
