(* A ~2-second engine smoke check, wired into @runtest via the
   @engine-smoke alias: a tiny sweep grid with jobs=2 must reproduce the
   sequential verdicts exactly, so parallel-path regressions fail tier-1. *)

let () =
  let eng = Engine.create ~jobs:2 () in
  let par = Engine.nf_boundary eng ~n_max:5 ~f_max:1 in
  let seq = Sweep.nf_boundary ~n_max:5 ~f_max:1 in
  if par <> seq then begin
    prerr_endline "engine-smoke: parallel nf verdicts diverge from sequential";
    exit 1
  end;
  let conn = Engine.connectivity_boundary eng ~f:1 ~kappas:[ 2; 3 ] ~n:7 in
  if conn <> Sweep.connectivity_boundary ~f:1 ~kappas:[ 2; 3 ] ~n:7 then begin
    prerr_endline "engine-smoke: parallel connectivity verdicts diverge";
    exit 1
  end;
  (* A warm re-run must be pure cache hits with equal verdicts. *)
  let snap_cold = Metrics.snapshot (Engine.metrics eng) in
  if Engine.nf_boundary eng ~n_max:5 ~f_max:1 <> seq then begin
    prerr_endline "engine-smoke: warm-cache verdicts diverge";
    exit 1
  end;
  let snap = Metrics.snapshot (Engine.metrics eng) in
  if snap.Metrics.cache_hits <= snap_cold.Metrics.cache_hits then begin
    prerr_endline "engine-smoke: warm re-run recorded no cache hits";
    exit 1
  end;
  Printf.printf
    "engine-smoke ok: jobs=%d, %d jobs completed, %d executions, %d hits / %d \
     misses\n"
    (Engine.jobs eng) snap.Metrics.jobs_completed snap.Metrics.executions_run
    snap.Metrics.cache_hits snap.Metrics.cache_misses
