(* A ~2-second fault-injection smoke check, wired into @runtest via the
   @faults-smoke alias: the axiom property harness must pass a fuzzed batch
   of chaos trials (Locality + Fault-axiom closure under every injected
   strategy), and the whole batch must be reproducible from its seed. *)

let () =
  (match Fault_harness.run ~trials:12 ~seed:42 () with
  | Ok r ->
    Printf.printf "faults-smoke ok: %d trials, %d locality checks, %d fault checks\n"
      r.Fault_harness.trials r.Fault_harness.locality_checks
      r.Fault_harness.fault_checks
  | Error e ->
    Format.eprintf "faults-smoke: %a@." Flm_error.pp e;
    exit 1);
  (* Same seed, same verdict — strategy installation is a pure function of
     the stream, so a second pass must also succeed without any divergence. *)
  match Fault_harness.run ~trials:12 ~seed:42 () with
  | Ok _ -> ()
  | Error e ->
    Format.eprintf "faults-smoke: rerun diverged: %a@." Flm_error.pp e;
    exit 1
