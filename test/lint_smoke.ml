(* The analyzer end to end, against the real binary (argv.(1)): seeded
   mutations in a temp tree fail with the Axiom_violation exit code and
   name the expected rule; clean trees exit 0; --format json emits a
   document Bench_json.parse accepts.

   This is the ISSUE's mutation check: drop Random.int into a protocol
   module, or an unpaired Mutex.lock into an engine module, and the build
   gate must go red with the right rule id.

   Run via the @lint-smoke alias (wired into @runtest). *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.eprintf "lint_smoke: FAIL: %s\n%!" m)
    fmt

let ok fmt = Printf.ksprintf (fun m -> Printf.printf "lint_smoke: ok: %s\n%!" m) fmt

(* Run [exe args], capturing stdout and the exit code. *)
let run_exe exe args =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close r;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      fail "%s ended by signal %d" (String.concat " " args) s;
      255
  in
  code, Buffer.contents buf

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let mkdir_p dir =
  let root = if String.length dir > 0 && dir.[0] = '/' then "/" else "" in
  List.fold_left
    (fun parent seg ->
      if seg = "" then parent
      else begin
        let d = if parent = "" then seg else Filename.concat parent seg in
        (try Unix.mkdir d 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
      end)
    root
    (String.split_on_char '/' dir)
  |> ignore

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The exit-code contract mirrored from Flm_error: Axiom_violation -> 14,
   hard-coded here on purpose so a drive-by renumbering fails the smoke. *)
let violation_code = 14

let () =
  let exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else (
      prerr_endline "usage: lint_smoke LINT_BINARY";
      exit 2)
  in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_lint_smoke_%d" (Unix.getpid ()))
  in
  rm_rf root;
  let expect ?(args = []) what ~code ~grep tree =
    rm_rf root;
    List.iter (fun (rel, src) -> write_file (Filename.concat root rel) src) tree;
    let got, out = run_exe exe (args @ [ root ]) in
    if got <> code then
      fail "%s: expected exit %d, got %d\noutput:\n%s" what code got out
    else if not (List.for_all (fun n -> contains ~needle:n out) grep) then
      fail "%s: output missing %s:\n%s" what (String.concat ", " grep) out
    else ok "%-34s -> %d" what got
  in
  let deep = [ "--deep"; "--no-cache" ] in
  (* Mutation: ambient randomness in a protocol module. *)
  expect "Random.int in lib/protocols" ~code:violation_code
    ~grep:[ "locality/random"; "mutant.ml:2" ]
    [ "lib/protocols/mutant.ml", "let shared = 1\nlet coin () = Random.int 2\n" ];
  (* Mutation: an unpaired lock in an engine module. *)
  expect "unpaired Mutex.lock in lib/engine" ~code:violation_code
    ~grep:[ "concurrency/lock-pairing"; "mutant.ml:2" ]
    [ ( "lib/engine/mutant.ml",
        "let f m g =\n  Mutex.lock m;\n  g ()\nlet g' = ignore\n" ) ];
  (* The same sources are clean where their rules are out of scope... *)
  expect "same code outside scoped dirs" ~code:0 ~grep:[ "0 findings" ]
    [ "bench/mutant.ml", "let coin () = Random.int 2\n" ];
  (* ...and a justified suppression silences the model-layer finding. *)
  expect "suppressed mutation" ~code:0 ~grep:[ "1 suppressed" ]
    [ ( "lib/protocols/mutant.ml",
        "(* flm-lint: allow locality/random -- smoke fixture *)\n\
         let coin () = Random.int 2\n" ) ];
  (* A file that does not parse is Invalid_input, not a rule violation. *)
  expect "parse failure is Invalid_input" ~code:10 ~grep:[ "lint/parse" ]
    [ "lib/protocols/mutant.ml", "let let\n" ];
  (* Deep mutation: a protocol step that launders Random.int through a
     helper module.  Per-file the sources are clean — the escape only
     exists interprocedurally — so the shallow gate passes and --deep
     fails with the full witness path. *)
  let escape_tree =
    [ "lib/protocols/proto.ml", "let step view = Helper.mix view\n";
      "lib/core/helper.ml", "let mix v = List.nth v (Random.int 2)\n" ]
  in
  expect "cross-module escape, shallow" ~code:0 ~grep:[ "0 findings" ]
    escape_tree;
  expect ~args:deep "cross-module escape, --deep" ~code:violation_code
    ~grep:
      [ "locality/transitive-random"; "proto.ml:1";
        "witness: Proto.step -> Helper.mix -> Random.int" ]
    escape_tree;
  (* Deep mutation: the ISSUE's seeded deadlock — two engine modules,
     each protect-pairing its own mutex (shallow-clean), acquiring the
     two locks in opposite orders. *)
  let deadlock_tree =
    [ ( "lib/engine/locka.ml",
        "let m = Mutex.create ()\n\
         let with_a f = Mutex.lock m; Fun.protect ~finally:(fun () -> \
         Mutex.unlock m) f\n\
         let a_then_b f = with_a (fun () -> Lockb.with_b f)\n" );
      ( "lib/engine/lockb.ml",
        "let m = Mutex.create ()\n\
         let with_b f = Mutex.lock m; Fun.protect ~finally:(fun () -> \
         Mutex.unlock m) f\n\
         let b_then_a f = with_b (fun () -> Locka.with_a f)\n" ) ]
  in
  expect "seeded deadlock, shallow" ~code:0 ~grep:[ "0 findings" ]
    deadlock_tree;
  expect ~args:deep "seeded deadlock, --deep" ~code:violation_code
    ~grep:[ "concurrency/lock-order-cycle"; "Locka:m"; "Lockb:m" ]
    deadlock_tree;
  (* --format json round-trips through Bench_json.parse. *)
  rm_rf root;
  write_file
    (Filename.concat root "lib/protocols/mutant.ml")
    "let coin () = Random.int 2\n";
  let code, out = run_exe exe [ "--format"; "json"; root ] in
  (if code <> violation_code then
     fail "json run: expected exit %d, got %d" violation_code code);
  (match Bench_json.parse out with
  | Error e -> fail "json output rejected by Bench_json.parse: %s" e
  | Ok (Bench_json.Obj fields) ->
    if List.assoc_opt "tool" fields <> Some (Bench_json.String "flm-lint") then
      fail "json output missing tool=flm-lint"
    else begin
      (match List.assoc_opt "findings" fields with
      | Some (Bench_json.List [ Bench_json.Obj f ]) ->
        if
          List.assoc_opt "rule" f
          <> Some (Bench_json.String "locality/random")
        then fail "json finding lacks rule=locality/random"
        else ok "json round-trip names the rule"
      | _ -> fail "json output should carry exactly one finding")
    end
  | Ok _ -> fail "json output should be an object");
  rm_rf root;
  if !failures > 0 then exit 1;
  print_endline "lint_smoke: OK"
