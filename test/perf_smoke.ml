(* The flat execution core's differential gates, wired into @runtest via the
   @perf-smoke alias:

   - trace differential: the flat arena executor and the legacy boxed
     executor ([Exec.with_boxed_for_testing]) must render byte-identical
     traces — same pretty-printed form, same per-node behaviors, decisions,
     and message statistics — across representative systems;
   - verdict differential: every job kind (boundary cell, connectivity
     cell, covering certificate, chaos trial, campaign trial) must produce
     equal verdicts on both paths, and certificates must summarize to the
     very same line;
   - journal differential: a checkpointed sweep must write byte-identical
     store journals whichever path executed it — the flat core cannot leak
     into the persistence format;
   - allocation budget: the flat path must not allocate meaningfully more
     than the boxed path it replaced, and a fixed workload must stay under
     an absolute per-run byte budget so an allocation regression in the
     executor fails here, loudly, not in a slow sweep.

   Deterministic: fixed systems, fixed seeds, and the executor itself is
   deterministic. *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "perf-smoke FAILED: %s\n" what
  end

(* A full textual dump of everything a trace can answer, so byte-equality
   of dumps is behavioral equality of representations. *)
let dump t =
  let buf = Buffer.create 4096 in
  let n = Graph.n (System.graph (Trace.system t)) in
  Buffer.add_string buf (Format.asprintf "%a@." Trace.pp t);
  for u = 0 to n - 1 do
    Array.iter
      (fun v -> Buffer.add_string buf (Format.asprintf "%a;" Value.pp v))
      (Trace.node_behavior t u);
    Buffer.add_string buf
      (Format.asprintf "decision %a at %s@."
         (Format.pp_print_option Value.pp)
         (Trace.decision t u)
         (match Trace.decision_round t u with
         | Some r -> string_of_int r
         | None -> "-"));
    for w = 0 to n - 1 do
      if w <> u then
        Array.iter
          (fun m ->
            Buffer.add_string buf
              (Format.asprintf "%a;" (Format.pp_print_option Value.pp) m))
          (Trace.edge_behavior t ~src:u ~dst:w)
    done
  done;
  Buffer.add_string buf
    (Printf.sprintf "messages %d volume %d by-node %s\n"
       (Trace.message_count t) (Trace.message_volume t)
       (String.concat ","
          (Array.to_list (Array.map string_of_int (Trace.messages_by_node t)))));
  Buffer.contents buf

let eig_sys n f =
  Eig.system (Topology.complete n) ~f
    ~inputs:(Array.init n (fun i -> Value.bool (i mod 2 = 0)))
    ~default:(Value.bool false)

let trace_differential () =
  List.iter
    (fun (label, sys, rounds) ->
      let flat = Exec.run sys ~rounds in
      let boxed =
        Exec.with_boxed_for_testing (fun () -> Exec.run sys ~rounds)
      in
      check
        (Printf.sprintf "%s: flat and boxed traces dump identically" label)
        (dump flat = dump boxed))
    [ "eig K4 f=1", eig_sys 4 1, Eig.decision_round ~f:1 + 1;
      "eig K7 f=2", eig_sys 7 2, Eig.decision_round ~f:2 + 1;
      "eig K5 f=1 long horizon", eig_sys 5 1, 6;
    ]

(* --- every job kind, both paths --------------------------------------------- *)

let verdict_differential () =
  let jobs =
    [ Job.Nf_cell { n = 4; f = 1 };
      Job.Nf_cell { n = 7; f = 2 };
      Job.Conn_cell { kappa = 2; n = 5; f = 1 };
      Job.Certify { problem = Job.Ba; n = 3; f = 1 };
      Job.Chaos_trial
        { family = "complete:4"; f = 1; seed = 5; strategy = "chaos";
          trial = 0 };
      Job.Campaign_trial
        { protocol = "eig"; family = "complete:4"; f = 1; seed = 2;
          strategy = "chaos"; trial = 1 };
    ]
  in
  List.iter
    (fun job ->
      let flat = Job.run job in
      let boxed = Exec.with_boxed_for_testing (fun () -> Job.run job) in
      check
        (Printf.sprintf "%s: equal verdicts on both paths" (Job.label job))
        (Job.equal_verdict flat boxed);
      match flat, boxed with
      | Job.Cert a, Job.Cert b ->
        check
          (Printf.sprintf "%s: certificate summaries are byte-identical"
             (Job.label job))
          (a.Job.summary = b.Job.summary)
      | _ -> ())
    jobs

(* --- the persistence format is representation-blind -------------------------- *)

let journal_bytes dir run =
  let store =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> failwith "perf-smoke: store open failed"
  in
  let eng = Engine.create ~jobs:1 ~store () in
  run eng;
  Engine.shutdown eng;
  Store.close store;
  let path = Filename.concat dir "journal.flm" in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let journal_differential () =
  let tmp suffix =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "flm_perf_smoke_%d_%s" (Unix.getpid ()) suffix)
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir
  in
  let cleanup dir =
    (try Sys.remove (Filename.concat dir "journal.flm")
     with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let sweep eng = ignore (Engine.nf_boundary eng ~n_max:5 ~f_max:1) in
  let flat_dir = tmp "flat" and boxed_dir = tmp "boxed" in
  Fun.protect
    ~finally:(fun () ->
      cleanup flat_dir;
      cleanup boxed_dir)
    (fun () ->
      let flat = journal_bytes flat_dir sweep in
      let boxed =
        Exec.with_boxed_for_testing (fun () -> journal_bytes boxed_dir sweep)
      in
      check "checkpointed sweeps journal byte-identically on both paths"
        (String.length flat > 0 && flat = boxed))

(* --- the allocation budget ---------------------------------------------------- *)

let allocation_budget () =
  let sys = eig_sys 5 1 in
  let rounds = Eig.decision_round ~f:1 + 1 in
  let reps = 20 in
  let measure () =
    (* Warm up first so one-time costs (scratch buffers, minor heap shape)
       don't land inside the measured window. *)
    ignore (Exec.run sys ~rounds);
    let before = Gc.allocated_bytes () in
    for _ = 1 to reps do
      ignore (Exec.run sys ~rounds)
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int reps
  in
  let flat = measure () in
  let boxed = Exec.with_boxed_for_testing measure in
  check
    (Printf.sprintf
       "flat path allocates no more than 1.25x the boxed path (%.0f vs %.0f \
        bytes/run)"
       flat boxed)
    (flat <= (boxed *. 1.25) +. 65536.0);
  (* The absolute ceiling: an eig K5 f=1 run allocates ~0.9 MB today; 2 MB
     of headroom means a 2x executor allocation regression fails here. *)
  let budget = 2_000_000.0 in
  check
    (Printf.sprintf "eig K5 f=1 stays under the %.0f-byte budget (%.0f)"
       budget flat)
    (flat <= budget)

let () =
  trace_differential ();
  verdict_differential ();
  journal_differential ();
  allocation_budget ();
  if !failures > 0 then begin
    Printf.eprintf "perf-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline
    "perf-smoke ok: trace/verdict/journal differentials + allocation budget"
