(* The persistent pool's differential smoke suite, wired into @runtest via
   the @pool-smoke alias:

   - randomized differential property: [Pool.map] over a long-lived pool
     must equal [Array.map] (results and ordering) across random batch
     sizes, jobs counts, and chunk hints — including batches raising at
     random indices, where the lowest failing index must be the one
     re-raised;
   - reuse: consecutive batches through one pool stay correct (the
     spawn-once protocol must retire each batch completely);
   - worker loss: with every worker sabotaged mid-batch, [map] must still
     return the full, identical batch via the calling-domain drain and
     report the degradation;
   - shutdown: idempotent, and a shut pool still maps (sequentially).

   Deterministic: the randomized cases use a fixed-seed PRNG. *)

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "pool-smoke FAILED: %s\n" what
  end

exception Boom of int

(* --- randomized differential property ------------------------------------- *)

let differential () =
  let rng = Random.State.make [| 0x9e3779b9 |] in
  List.iter
    (fun jobs ->
      let chunk = 1 + Random.State.int rng 4 in
      let pool = Pool.create ~jobs ~chunk ~oversubscribe:true () in
      (* Many batches through the same pool: sizes around the chunking edge
         cases (0, 1, chunk, jobs*chunk, and well past them). *)
      for trial = 1 to 25 do
        let len = Random.State.int rng 120 in
        let arr = Array.init len (fun _ -> Random.State.int rng 1000) in
        let f x = (x * x) + 1 in
        let expected = Array.map f arr in
        check
          (Printf.sprintf "jobs=%d trial=%d: map = Array.map (len %d)" jobs
             trial len)
          (Pool.map pool f arr = expected);
        (* Exception propagation: poison a random subset, the lowest poisoned
           index must surface. *)
        if len > 0 then begin
          let poisoned =
            List.sort_uniq compare
              (List.init
                 (1 + Random.State.int rng 3)
                 (fun _ -> Random.State.int rng len))
          in
          let lowest = List.hd poisoned in
          let g i = if List.mem i poisoned then raise (Boom i) else i in
          match Pool.map pool g (Array.init len Fun.id) with
          | _ -> check "poisoned batch must raise" false
          | exception Boom i ->
            check
              (Printf.sprintf
                 "jobs=%d trial=%d: lowest poisoned index wins (%d, got %d)"
                 jobs trial lowest i)
              (i = lowest)
          | exception e ->
            check
              (Printf.sprintf "unexpected exception %s" (Printexc.to_string e))
              false
        end
      done;
      Pool.shutdown pool)
    [ 1; 2; 3; 8 ]

(* --- reuse across batches --------------------------------------------------- *)

let reuse () =
  let degradations = ref 0 in
  let pool =
    Pool.create ~jobs:4 ~oversubscribe:true
      ~on_degrade:(fun _ -> incr degradations) ()
  in
  let a = Array.init 64 Fun.id in
  let first = Pool.map pool succ a in
  let second = Pool.map pool (fun x -> x * 2) a in
  check "first batch through a persistent pool" (first = Array.map succ a);
  check "second batch reuses the same workers"
    (second = Array.map (fun x -> x * 2) a);
  check "healthy batches never degrade" (!degradations = 0);
  Pool.shutdown pool

(* --- worker loss: the post-join drain ---------------------------------------- *)

let worker_loss () =
  (* The sabotage only fires if a worker actually enters the batch, which on
     a busy single-core box can lose the race against the calling domain
     draining the cursor alone: items sleep so the caller yields the CPU,
     and the whole scenario retries on a fresh pool if no worker made it in
     time.  Whatever the interleaving, every batch must come back complete
     and ordered. *)
  let rec attempt k =
    let degradations = ref [] in
    let pool =
      Pool.create ~jobs:4 ~chunk:2 ~oversubscribe:true
        ~on_degrade:(fun r -> degradations := r :: !degradations)
        ()
    in
    let a = Array.init 40 Fun.id in
    (* Prime the pool so the workers are alive before the sabotage. *)
    check "pre-sabotage batch" (Pool.map pool succ a = Array.map succ a);
    Pool.sabotage_workers_for_testing pool;
    let slow x =
      Unix.sleepf 0.001;
      x * 3
    in
    check "total worker loss still returns the full batch in order"
      (Pool.map pool slow a = Array.map (fun x -> x * 3) a);
    let reported = !degradations <> [] in
    (* Dead workers or not, the next batch must still answer (sequential
       fallback once every worker is gone). *)
    check "post-loss batch still answers"
      (Pool.map pool (fun x -> x - 1) a = Array.map (fun x -> x - 1) a);
    Pool.shutdown pool;
    if not reported then
      if k < 10 then attempt (k + 1)
      else check "worker loss is reported within 10 attempts" false
  in
  attempt 1

(* --- shutdown ----------------------------------------------------------------- *)

let shutdown () =
  let pool = Pool.create ~jobs:4 ~oversubscribe:true () in
  let a = Array.init 32 Fun.id in
  check "batch before shutdown" (Pool.map pool succ a = Array.map succ a);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  check "a shut pool still maps (sequential fallback)"
    (Pool.map pool succ a = Array.map succ a);
  Pool.shutdown pool;
  (* Shutdown before any parallel map: nothing was spawned, nothing hangs. *)
  let fresh = Pool.create ~jobs:8 ~oversubscribe:true () in
  Pool.shutdown fresh;
  check "shutdown of a never-used pool"
    (Pool.map fresh succ [| 1; 2; 3 |] = [| 2; 3; 4 |])

let () =
  differential ();
  reuse ();
  worker_loss ();
  shutdown ();
  if !failures > 0 then begin
    Printf.eprintf "pool-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "pool-smoke ok: differential, reuse, worker-loss, shutdown"
