(* End-to-end resilience: a real daemon behind a real wire-level chaos
   proxy, attacked by the seeded fault catalog, driven by resilient
   clients.  Three phases:

   (a) Fault mix — every request through a >=20% drop/corrupt/delay/dup
       mix terminates (success or typed error, never a hang), some
       succeed, and the proxy's fault counters prove faults actually
       fired.
   (b) Breaker — consecutive connect failures trip the breaker open
       (fast-fail with a typed "circuit open" error), and once a daemon
       appears and the cooldown elapses, a half-open probe closes it.
   (c) Kill and restart — SIGKILL the daemon mid-run; a restarted daemon
       reclaims the socket, the resilient client reconnects on its own,
       and the resumed verdict is byte-identical to the pre-kill one.

   Process architecture mirrors bench_e19/campaign: the daemon and the
   proxy are forked processes (forking is only safe while single-domain,
   and the parent stays single-domain throughout), so the parent can
   SIGKILL the daemon at any phase.

   Run via the @resilience-smoke alias (wired into @runtest). *)

let ( // ) = Filename.concat

let failures = ref 0

let checkf ok fmt =
  Printf.ksprintf
    (fun what ->
      if ok then Printf.printf "resilience_smoke: ok: %s\n%!" what
      else begin
        incr failures;
        Printf.eprintf "resilience_smoke: FAIL: %s\n%!" what
      end)
    fmt

(* --- forked processes ----------------------------------------------------- *)

let start_daemon ~socket_path ~jobs =
  match Unix.fork () with
  | 0 ->
    let cfg =
      {
        Serve.socket_path;
        jobs;
        store_dir = None;
        resume = false;
        max_sessions = 16;
        engine_config = Engine.default_config;
      }
    in
    let code = match Serve.run cfg with Ok _ -> 0 | Error _ -> 1 in
    Unix._exit code
  | pid -> pid

(* The proxy process writes its final fault counters as JSON on clean
   shutdown, so the parent can assert faults actually fired. *)
let start_proxy ~cfg ~counters_file =
  match Unix.fork () with
  | 0 ->
    let code =
      match Chaos_proxy.run cfg with
      | Ok counters ->
        Bench_json.write_file ~path:counters_file
          (Chaos_proxy.counters_to_json counters);
        0
      | Error _ -> 1
    in
    Unix._exit code
  | pid -> pid

let wait_connectable socket_path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () ->
      Unix.close fd;
      true
    | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let stop_process pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

(* --- phase a: the fault mix ----------------------------------------------- *)

(* Cheap, deterministic ops: the smoke exercises the wire, not the engine. *)
let ops =
  [| Serve_proto.Request.Ping;
     Serve_proto.Request.Stats;
     Serve_proto.Request.Certify { problem = Job.Ba; n = 3; f = 1 };
     Serve_proto.Request.Certify { problem = Job.Ba_conn; n = 8; f = 1 };
  |]

let fault_mix =
  Fault_strategy.Chaos
    [ (1, Fault_strategy.Drop 0.25);
      (1, Fault_strategy.Corrupt 0.25);
      (1, Fault_strategy.Delay 1);
      (1, Fault_strategy.Duplicate 0.25);
    ]

let phase_fault_mix tmp =
  let up = tmp // "up_a.sock" in
  let px = tmp // "px_a.sock" in
  let counters_file = tmp // "proxy_counters.json" in
  let daemon = start_daemon ~socket_path:up ~jobs:2 in
  checkf (wait_connectable up) "daemon up for the fault mix";
  let proxy =
    start_proxy
      ~cfg:
        {
          Chaos_proxy.socket_path = px;
          upstream = up;
          seed = 1337;
          strategy = fault_mix;
          delay_unit_ms = 25;
        }
      ~counters_file
  in
  checkf (wait_connectable px) "proxy up in front of it";
  let policy =
    {
      Resil_policy.retries = 6;
      base_backoff_ms = 10;
      max_backoff_ms = 200;
      io_timeout_ms = 500;
      deadline_ms = Some 10_000;
    }
  in
  (* A small fleet sharing one breaker, like one process's worth of
     clients.  High threshold: this phase watches retries, not trips. *)
  let breaker =
    Resil_breaker.create
      { Resil_breaker.failure_threshold = 1_000; cooldown_ms = 500; half_open_probes = 1 }
  in
  let clients =
    List.filter_map
      (fun seed ->
        match Resil_client.create ~policy ~breaker ~seed ~socket_path:px () with
        | Ok c -> Some c
        | Error _ -> None)
      [ 1; 2; 3 ]
  in
  checkf (List.length clients = 3) "three resilient clients created";
  let total = ref 0 and succeeded = ref 0 and typed = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun ci c ->
      for k = 0 to 9 do
        incr total;
        let op = ops.((ci + k) mod Array.length ops) in
        match Resil_client.request c { Serve_proto.Request.op; timeout_ms = None } with
        | Ok (Serve_proto.Response.Result _) -> incr succeeded
        | Ok (Serve_proto.Response.Failed _) | Error _ -> incr typed
      done)
    clients;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Termination: every call came back, inside its deadline budget. *)
  checkf (!succeeded + !typed = !total) "all %d requests terminated" !total;
  checkf (!succeeded > !total / 2)
    "majority succeeded under the mix (%d/%d, %.1fs)" !succeeded !total elapsed;
  let retried =
    List.fold_left
      (fun acc c -> acc + (Resil_client.stats c).Resil_client.retries)
      0 clients
  in
  checkf (retried > 0) "retries actually happened (%d)" retried;
  List.iter Resil_client.close clients;
  stop_process proxy;
  stop_process daemon;
  (* The proxy's own tallies prove the mix fired on the wire. *)
  let counter name =
    match Bench_json.parse (In_channel.with_open_bin counters_file In_channel.input_all) with
    | Ok doc -> Option.bind (Bench_json.member name doc) Bench_json.to_int_opt
    | Error _ -> None
  in
  let count name = Option.value ~default:0 (counter name) in
  checkf (count "connections" > 0) "proxy saw connections (%d)" (count "connections");
  checkf
    (count "dropped" + count "corrupted" + count "delayed" + count "duplicated" > 0)
    "faults fired on the wire (drop %d, corrupt %d, delay %d, dup %d, swallowed %d)"
    (count "dropped") (count "corrupted") (count "delayed") (count "duplicated")
    (count "swallowed")

(* --- phase b: the breaker opens and recovers ------------------------------- *)

let phase_breaker tmp =
  let sock = tmp // "up_b.sock" in
  let policy =
    {
      Resil_policy.retries = 0;
      base_backoff_ms = 5;
      max_backoff_ms = 20;
      io_timeout_ms = 2_000;
      deadline_ms = Some 5_000;
    }
  in
  let client =
    match
      Resil_client.create ~policy
        ~breaker_config:
          { Resil_breaker.failure_threshold = 3; cooldown_ms = 300; half_open_probes = 1 }
        ~seed:7 ~socket_path:sock ()
    with
    | Ok c -> c
    | Error e ->
      checkf false "client create: %s" (Flm_error.to_string e);
      exit 1
  in
  let req = { Serve_proto.Request.op = Serve_proto.Request.Ping; timeout_ms = None } in
  (* Nothing listens: three consecutive failures trip the breaker. *)
  for _ = 1 to 3 do
    ignore (Resil_client.request client req)
  done;
  let b = Resil_client.breaker client in
  checkf (Resil_breaker.state b = Resil_breaker.Open) "breaker opened after 3 failures";
  (match Resil_client.request client req with
  | Error (Flm_error.Net { detail; _ })
    when String.length detail >= 12 && String.sub detail 0 12 = "circuit open" ->
    checkf true "open breaker fast-fails with a typed error"
  | _ -> checkf false "open breaker fast-fails with a typed error");
  checkf
    ((Resil_client.stats client).Resil_client.breaker_rejections >= 1)
    "rejection counted without touching the wire";
  (* The service comes back; after the cooldown a probe closes the circuit. *)
  let daemon = start_daemon ~socket_path:sock ~jobs:1 in
  checkf (wait_connectable sock) "daemon started behind the tripped breaker";
  Unix.sleepf 0.4;
  (match Resil_client.ping client with
  | Ok p ->
    checkf (not p.Serve_proto.Ping.draining) "probe succeeded; daemon healthy"
  | Error e -> checkf false "probe after cooldown: %s" (Flm_error.to_string e));
  checkf (Resil_breaker.state b = Resil_breaker.Closed) "breaker closed again";
  Resil_client.close client;
  stop_process daemon

(* --- phase c: kill -9, restart, byte-identical resume ---------------------- *)

let phase_kill_restart tmp =
  let sock = tmp // "up_c.sock" in
  let policy =
    {
      Resil_policy.retries = 10;
      base_backoff_ms = 25;
      max_backoff_ms = 400;
      io_timeout_ms = 2_000;
      deadline_ms = Some 15_000;
    }
  in
  let client =
    match Resil_client.create ~policy ~seed:9 ~socket_path:sock () with
    | Ok c -> c
    | Error e ->
      checkf false "client create: %s" (Flm_error.to_string e);
      exit 1
  in
  let req =
    {
      Serve_proto.Request.op =
        Serve_proto.Request.Certify { problem = Job.Ba; n = 3; f = 1 };
      timeout_ms = None;
    }
  in
  let daemon = start_daemon ~socket_path:sock ~jobs:1 in
  checkf (wait_connectable sock) "daemon up for the kill phase";
  let before =
    match Resil_client.result client req with
    | Ok doc -> Bench_json.to_string doc
    | Error e ->
      checkf false "pre-kill verdict: %s" (Flm_error.to_string e);
      ""
  in
  (* SIGKILL: no drain, no unlink — the worst crash.  The restarted daemon
     must reclaim the stale socket; the client must reconnect by itself. *)
  Unix.kill daemon Sys.sigkill;
  ignore (Unix.waitpid [] daemon);
  let daemon2 = start_daemon ~socket_path:sock ~jobs:1 in
  let after =
    match Resil_client.result client req with
    | Ok doc -> Bench_json.to_string doc
    | Error e ->
      checkf false "post-restart verdict: %s" (Flm_error.to_string e);
      "?"
  in
  checkf (before <> "" && before = after)
    "resumed verdict is byte-identical after SIGKILL + restart";
  checkf
    ((Resil_client.stats client).Resil_client.reconnects >= 1)
    "client reconnected on its own (%d reconnects)"
    (Resil_client.stats client).Resil_client.reconnects;
  Resil_client.close client;
  stop_process daemon2

let () =
  let tmp =
    Filename.get_temp_dir_name ()
    // Printf.sprintf "flm_resil_smoke_%d" (Unix.getpid ())
  in
  (try Unix.mkdir tmp 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (tmp // f) with Sys_error _ -> ())
        (try Sys.readdir tmp with Sys_error _ -> [||]);
      try Unix.rmdir tmp with Unix.Unix_error _ -> ())
    (fun () ->
      phase_fault_mix tmp;
      phase_breaker tmp;
      phase_kill_restart tmp;
      if !failures > 0 then exit 1;
      print_endline "resilience_smoke: OK")
