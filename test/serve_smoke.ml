(* End-to-end smoke of the serve subsystem, driving a real daemon over a
   real Unix socket:

   - protocol hygiene: a framing violation is refused with a typed Net
     error and closes the connection; a malformed document is answered
     and the connection stays usable;
   - fidelity: certify/sweep/chaos answers are byte-identical to running
     the same jobs in batch mode (same projection, same printer);
   - coalescing: concurrent identical certify requests are computed once
     (the engine's single-flight dedup counter moves);
   - overload: a connection past max-sessions is refused, not queued;
   - shutdown: SIGTERM lets the in-flight request finish, answers it,
     drains, and leaves a journal with zero corrupt records.

   Run via the @serve-smoke alias (wired into @runtest). *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "serve_smoke: ok: %s\n%!" name
  else begin
    incr failures;
    Printf.eprintf "serve_smoke: FAIL: %s\n%!" name
  end

let tmpdir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "flm_serve_smoke_%d" (Unix.getpid ()))

let socket_path = Filename.concat tmpdir "flm.sock"
let store_dir = Filename.concat tmpdir "store"

let connect () =
  match Serve_client.connect ~socket_path () with
  | Ok c -> c
  | Error e ->
    Printf.eprintf "serve_smoke: cannot connect: %s\n%!" (Flm_error.to_string e);
    exit 1

let req op = { Serve_proto.Request.op; timeout_ms = None }

(* The batch-mode reference: the same job run in this process, projected
   and printed by the same codec the daemon uses. *)
let local_verdict spec =
  Bench_json.to_string
    (Serve_proto.Verdict.to_json
       (Serve_proto.Verdict.of_job_verdict (Job.run spec)))

let daemon_json client op =
  match Serve_client.result client (req op) with
  | Ok doc -> Ok (Bench_json.to_string doc)
  | Error e -> Error e

let raw_connect () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  fd

let read_response fd =
  match Serve_proto.read_frame ~endpoint:"smoke" fd with
  | Ok (Serve_proto.Frame s) -> (
    match Bench_json.parse s with
    | Ok json -> Serve_proto.Response.of_json json
    | Error e -> Error e)
  | Ok Serve_proto.Eof -> Error "eof"
  | Error e -> Error (Flm_error.to_string e)

let int_at path doc =
  let rec go path doc =
    match path with
    | [] -> Bench_json.to_int_opt doc
    | k :: rest -> (
      match Bench_json.member k doc with Some v -> go rest v | None -> None)
  in
  Option.value ~default:(-1) (go path doc)

let () =
  (try Unix.mkdir tmpdir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let ready = Atomic.make false in
  let cfg =
    {
      Serve.socket_path;
      jobs = 2;
      store_dir = Some store_dir;
      resume = false;
      max_sessions = 4;
      engine_config = Engine.default_config;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  check "daemon ready" (Atomic.get ready);

  (* (a) Framing violation: a zero length prefix is answered with a typed
     Net error and the connection is closed — it cannot resynchronize. *)
  let fd = raw_connect () in
  ignore (Unix.write fd (Bytes.make 4 '\000') 0 4);
  (match read_response fd with
  | Ok (Serve_proto.Response.Failed (Flm_error.Net _)) ->
    check "framing violation refused with Net" true
  | _ -> check "framing violation refused with Net" false);
  (match Serve_proto.read_frame ~endpoint:"smoke" fd with
  | Ok Serve_proto.Eof -> check "connection closed after framing error" true
  | _ -> check "connection closed after framing error" false);
  Unix.close fd;

  (* (b) Malformed document: answered with Net, and the same connection
     then serves a valid request. *)
  let fd = raw_connect () in
  (match Serve_proto.write_frame ~endpoint:"smoke" fd "this is not json" with
  | Ok () -> ()
  | Error e ->
    check ("write malformed doc: " ^ Flm_error.to_string e) false);
  (match read_response fd with
  | Ok (Serve_proto.Response.Failed (Flm_error.Net _)) ->
    check "malformed document answered with Net" true
  | _ -> check "malformed document answered with Net" false);
  (match
     Serve_proto.write_frame ~endpoint:"smoke" fd
       (Bench_json.to_string
          (Serve_proto.Request.to_json (req Serve_proto.Request.Stats)))
   with
  | Ok () -> ()
  | Error _ -> check "stats after malformed doc" false);
  (match read_response fd with
  | Ok (Serve_proto.Response.Result _) ->
    check "connection survives a malformed document" true
  | _ -> check "connection survives a malformed document" false);
  Unix.close fd;

  (* (b') Version mismatch: a well-formed document speaking tomorrow's
     protocol is answered with a typed Net error naming both versions, and
     the connection stays usable — a skewed client gets told, not cut. *)
  let fd = raw_connect () in
  (match
     Serve_proto.write_frame ~endpoint:"smoke" fd
       (Bench_json.to_string
          (Bench_json.Obj
             [ "v", Bench_json.Int (Serve_proto.protocol_version + 1);
               "op", Bench_json.String "stats";
             ]))
   with
  | Ok () -> ()
  | Error e -> check ("write version-mismatch doc: " ^ Flm_error.to_string e) false);
  (match read_response fd with
  | Ok (Serve_proto.Response.Failed (Flm_error.Net { detail; _ })) ->
    check "version mismatch answered with Net naming the version"
      (let needle = Printf.sprintf "version %d" (Serve_proto.protocol_version + 1) in
       let rec has i =
         i + String.length needle <= String.length detail
         && (String.sub detail i (String.length needle) = needle || has (i + 1))
       in
       has 0)
  | _ -> check "version mismatch answered with Net naming the version" false);
  (match
     Serve_proto.write_frame ~endpoint:"smoke" fd
       (Bench_json.to_string
          (Serve_proto.Request.to_json (req Serve_proto.Request.Stats)))
   with
  | Ok () -> ()
  | Error _ -> check "stats after version mismatch" false);
  (match read_response fd with
  | Ok (Serve_proto.Response.Result _) ->
    check "connection survives a version mismatch" true
  | _ -> check "connection survives a version mismatch" false);
  Unix.close fd;

  (* (a') Oversized frame: a length prefix past max_frame_bytes is refused
     with a typed Net error and the connection is closed — the daemon will
     not allocate on an attacker's say-so, and cannot resynchronize. *)
  let fd = raw_connect () in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Serve_proto.max_frame_bytes + 1));
  ignore (Unix.write fd header 0 4);
  (match read_response fd with
  | Ok (Serve_proto.Response.Failed (Flm_error.Net _)) ->
    check "oversized frame refused with Net" true
  | _ -> check "oversized frame refused with Net" false);
  (match Serve_proto.read_frame ~endpoint:"smoke" fd with
  | Ok Serve_proto.Eof -> check "connection closed after oversized frame" true
  | _ -> check "connection closed after oversized frame" false);
  Unix.close fd;

  (* (c) Byte-identical verdicts vs batch mode. *)
  let c = connect () in
  (match
     daemon_json c
       (Serve_proto.Request.Certify { problem = Job.Ba; n = 3; f = 1 })
   with
  | Ok got ->
    check "certify byte-identical to batch"
      (got = local_verdict (Job.Certify { problem = Job.Ba; n = 3; f = 1 }))
  | Error _ -> check "certify byte-identical to batch" false);
  (match daemon_json c (Serve_proto.Request.Sweep { n_max = 6; f_max = 2 }) with
  | Ok got ->
    let local =
      Bench_json.to_string
        (Bench_json.List
           (List.map
              (fun cell ->
                Serve_proto.Verdict.to_json (Serve_proto.Verdict.Cell cell))
              (Sweep.nf_boundary ~n_max:6 ~f_max:2)))
    in
    check "sweep byte-identical to batch" (got = local)
  | Error _ -> check "sweep byte-identical to batch" false);
  let family = "complete:5" and cseed = 7 and strategy = "drop" in
  (match
     daemon_json c
       (Serve_proto.Request.Chaos
          { family; f = 1; seed = cseed; strategy; trials = 4 })
   with
  | Ok got ->
    let local =
      Bench_json.to_string
        (Bench_json.List
           (List.init 4 (fun trial ->
                Serve_proto.Slot.to_json
                  (Ok
                     (Serve_proto.Verdict.of_job_verdict
                        (Job.run
                           (Job.Chaos_trial
                              { family; f = 1; seed = cseed; strategy; trial })))))))
    in
    check "chaos byte-identical to batch" (got = local)
  | Error _ -> check "chaos byte-identical to batch" false);
  Serve_client.close c;

  (* (d) Coalescing: four clients fire the same fresh ~0.4 s certify at
     once; the engine computes it once and the rest join the flight.  While
     those four sessions are busy, a fifth connection must be refused. *)
  let slow = Job.Certify { problem = Job.Ba; n = 7; f = 3 } in
  let barrier = Atomic.make 0 in
  let clients =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = connect () in
            Atomic.incr barrier;
            while Atomic.get barrier < 4 do
              Domain.cpu_relax ()
            done;
            let r =
              daemon_json c
                (Serve_proto.Request.Certify
                   { problem = Job.Ba; n = 7; f = 3 })
            in
            Serve_client.close c;
            r))
  in
  while Atomic.get barrier < 4 do
    Unix.sleepf 0.005
  done;
  Unix.sleepf 0.05;
  let refused =
    match Serve_client.connect ~socket_path () with
    | Error (Flm_error.Net _) -> true
    | Error _ -> false
    | Ok c5 -> (
      let r = Serve_client.result c5 (req Serve_proto.Request.Stats) in
      Serve_client.close c5;
      match r with Error (Flm_error.Net _) -> true | Ok _ | Error _ -> false)
  in
  check "overload: fifth session refused with Net" refused;
  let answers = List.map Domain.join clients in
  let reference = local_verdict slow in
  check "coalesced answers all byte-identical to batch"
    (List.for_all (function Ok s -> s = reference | Error _ -> false) answers);

  (* (e) Counters: the flight was joined, the refusal was counted. *)
  let c = connect () in
  (match Serve_client.result c (req Serve_proto.Request.Stats) with
  | Ok doc ->
    check "stats: coalesced > 0" (int_at [ "engine"; "coalesced" ] doc > 0);
    check "stats: overload counted"
      (int_at [ "server"; "rejected_overload" ] doc > 0);
    check "stats: latency samples present"
      (int_at [ "server"; "latency_count" ] doc > 0)
  | Error _ -> check "stats request" false);
  (match Serve_client.result c (req Serve_proto.Request.Store_stat) with
  | Ok doc -> check "store-stat: journaled verdicts" (int_at [ "live" ] doc > 0)
  | Error _ -> check "store-stat request" false);
  Serve_client.close c;

  (* (f) SIGTERM drain: a ~1.4 s certify is in flight when the signal
     lands; the session finishes it, answers, and the daemon shuts down
     with an intact journal and an unlinked socket. *)
  let late =
    Domain.spawn (fun () ->
        let c = connect () in
        let r =
          daemon_json c
            (Serve_proto.Request.Certify { problem = Job.Ba; n = 8; f = 3 })
        in
        Serve_client.close c;
        r)
  in
  Unix.sleepf 0.3;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (match Domain.join late with
  | Ok got ->
    check "in-flight request answered across SIGTERM"
      (got = local_verdict (Job.Certify { problem = Job.Ba; n = 8; f = 3 }))
  | Error _ -> check "in-flight request answered across SIGTERM" false);
  (match Domain.join daemon with
  | Ok report -> check "daemon drained to a report" (String.length report > 0)
  | Error e ->
    check ("daemon drained cleanly: " ^ Flm_error.to_string e) false);
  check "socket unlinked on shutdown" (not (Sys.file_exists socket_path));
  (match Store.verify store_dir with
  | Ok (records, []) -> check "journal intact after drain" (records > 0)
  | Ok (_, cs) ->
    check
      (Printf.sprintf "journal intact after drain (%d corrupt)"
         (List.length cs))
      false
  | Error e ->
    check ("journal intact after drain: " ^ Flm_error.to_string e) false);

  if !failures > 0 then exit 1;
  print_endline "serve_smoke: OK"
