(* The kill-during-run soak: prove the checkpoint store's crash-safety
   end to end.  For each seed, a child process sweeps the grid while
   checkpointing into a store; the parent SIGKILLs it at a seeded random
   point mid-run, then resumes the sweep in-process from whatever the
   journal durably holds.  The resumed verdict set must be byte-identical
   (under the canonical codec) to an uninterrupted run, with every cell
   accounted for as either resumed or recomputed.  A final pass flips and
   truncates journal bytes to check that deliberate corruption surfaces as
   typed reports and recomputation, never wrong verdicts.

   Run via the @store-smoke alias (wired into @runtest). *)

let n_max = 9
let f_max = 2

let fail fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "store_smoke: FAIL: %s\n%!" m;
      exit 1)
    fmt

let open_store dir =
  match Store.open_dir dir with
  | Ok s -> s
  | Error e -> fail "open_dir %s: %s" dir (Flm_error.to_string e)

(* The canonical bytes of a verdict list: what "byte-identical" means. *)
let serialize cells =
  String.concat "|"
    (List.map
       (fun c ->
         match Job.verdict_to_value (Job.Cell c) with
         | Some v -> Store_codec.encode v
         | None -> fail "nf cells must be storable")
       cells)

let sweep ?store ?(resume = false) () =
  let eng = Engine.create ~jobs:2 ?store ~resume () in
  let cells = Engine.nf_boundary eng ~n_max ~f_max in
  cells, Metrics.snapshot (Engine.metrics eng)

(* Child mode: checkpoint the sweep into DIR until killed. *)
let run_child dir =
  let store = open_store dir in
  let _ = sweep ~store () in
  Store.close store;
  exit 0

let fresh_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let cleanup dir =
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
   with _ -> ());
  try Unix.rmdir dir with _ -> ()

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* One seeded kill-resume round.  [reference] is the uninterrupted run's
   serialized verdicts; [duration] its wall-clock, which scales the seeded
   kill delay so the SIGKILL lands mid-sweep. *)
let soak_round ~reference ~duration ~total seed =
  let dir = fresh_dir (Printf.sprintf "flm_soak_%d_%d" (Unix.getpid ()) seed) in
  let frac, _ = Fault_prng.float (Fault_prng.of_seed seed) in
  let delay = (0.15 +. (0.7 *. frac)) *. duration in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--child"; dir |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.sleepf delay;
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  let _, status = Unix.waitpid [] pid in
  let outcome =
    match status with
    | Unix.WSIGNALED s when s = Sys.sigkill -> "killed mid-run"
    | Unix.WEXITED 0 -> "finished before the kill"
    | _ -> fail "seed %d: child ended unexpectedly" seed
  in
  let store = open_store dir in
  let checkpointed = Store.length store in
  let torn = List.length (Store.corruptions store) in
  let cells, snap = sweep ~store ~resume:true () in
  Store.close store;
  if serialize cells <> reference then
    fail "seed %d: resumed verdicts differ from the uninterrupted run" seed;
  if snap.Metrics.resumed <> checkpointed then
    fail "seed %d: resumed %d cells but the store held %d" seed
      snap.Metrics.resumed checkpointed;
  if snap.Metrics.resumed + snap.Metrics.recomputed <> total then
    fail "seed %d: %d resumed + %d recomputed <> %d cells" seed
      snap.Metrics.resumed snap.Metrics.recomputed total;
  Printf.printf
    "store_smoke: seed %d: %s at %.2fs; %d checkpointed (%d torn), %d \
     resumed + %d recomputed, verdicts byte-identical\n%!"
    seed outcome delay checkpointed torn snap.Metrics.resumed
    snap.Metrics.recomputed;
  dir

(* Deliberate damage on a completed store: a flipped payload byte and a
   torn tail must each surface as typed corruption reports, and a resumed
   sweep must recompute exactly the lost cells and still match. *)
let corruption_round ~reference ~total dir =
  let path = Filename.concat dir "journal.flm" in
  (* A full, clean journal to damage. *)
  let store = open_store dir in
  let cells, _ = sweep ~store ~resume:true () in
  Store.close store;
  if serialize cells <> reference then fail "pre-damage run differs";
  let whole = read_file path in
  let damaged = Bytes.of_string whole in
  Bytes.set damaged 17 (Char.chr (Char.code (Bytes.get damaged 17) lxor 0x01));
  write_file path (Bytes.to_string damaged);
  (match Store.verify dir with
  | Ok (_, [ Flm_error.Store_corrupt _ ]) -> ()
  | Ok (_, cs) -> fail "bit flip: expected 1 corruption, got %d" (List.length cs)
  | Error e -> fail "bit flip: verify refused: %s" (Flm_error.to_string e));
  let store = open_store dir in
  let live = Store.length store in
  let cells, snap = sweep ~store ~resume:true () in
  Store.close store;
  if serialize cells <> reference then fail "bit flip: verdicts differ";
  if snap.Metrics.recomputed <> total - live || snap.Metrics.recomputed < 1
  then
    fail "bit flip: expected the damaged cell recomputed, got %d"
      snap.Metrics.recomputed;
  (* Compact away the flipped frame (its repair only superseded it) so the
     next damage pass starts from a clean journal. *)
  let store = open_store dir in
  let (_ : int) = Store.gc store in
  Store.close store;
  (match Store.verify dir with
  | Ok (n, []) when n = total -> ()
  | _ -> fail "gc did not leave a clean journal");
  (* Torn tail: chop the last few bytes, as a mid-append crash would. *)
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole - 5));
  (match Store.verify dir with
  | Ok (_, [ Flm_error.Store_corrupt _ ]) -> ()
  | Ok (_, cs) -> fail "torn tail: expected 1 corruption, got %d" (List.length cs)
  | Error e -> fail "torn tail: verify refused: %s" (Flm_error.to_string e));
  let store = open_store dir in
  let cells, snap = sweep ~store ~resume:true () in
  Store.close store;
  if serialize cells <> reference then fail "torn tail: verdicts differ";
  if snap.Metrics.recomputed < 1 then fail "torn tail: nothing recomputed";
  Printf.printf
    "store_smoke: corruption: bit flip and torn tail both detected, \
     recomputed, verdicts byte-identical\n%!"

(* --- cross-journal merge ------------------------------------------------- *)

(* Seed a source store with [keys], every key carrying the payload a
   deterministic recomputation would produce — overlapping shards agree on
   shared keys, which is what makes merge order erasable. *)
let seed_source dir keys =
  let store = open_store dir in
  List.iter
    (fun k ->
      Store.put store ~key:(Value.int k)
        (Value.tag "cell" (Value.pair (Value.int k) (Value.int (k * k)))))
    keys;
  Store.close store

let journal_bytes dir = read_file (Filename.concat dir "journal.flm")

(* Merge child mode: fold SRC into DST until killed. *)
let run_merge_child dst src =
  let store = open_store dst in
  (match Store.merge_from store src with
  | Ok _ -> ()
  | Error e -> fail "merge child: %s" (Flm_error.to_string e));
  Store.close store;
  exit 0

(* (1) Order independence: three overlapping shard journals merged in two
   different orders compact (canonically) to byte-identical journals.
   (2) LWW: a foreign record with a different payload supersedes the local
   one.  (3) SIGKILL mid-merge: the destination reopens as a valid prefix
   of the merge, and re-merging completes to the byte-identical result. *)
let merge_round () =
  let pid = Unix.getpid () in
  let dir name = fresh_dir (Printf.sprintf "flm_merge_%s_%d" name pid) in
  let s1 = dir "s1" and s2 = dir "s2" and s3 = dir "s3" in
  seed_source s1 (List.init 10 (fun i -> i));
  seed_source s2 (List.init 10 (fun i -> i + 5));
  seed_source s3 (List.init 8 (fun i -> i + 12));
  let merge_all dst srcs =
    let store = open_store dst in
    let folded =
      List.map
        (fun src ->
          match Store.merge_from store src with
          | Ok n -> n
          | Error e -> fail "merge_from %s: %s" src (Flm_error.to_string e))
        srcs
    in
    let (_ : int) = Store.gc ~canonical:true store in
    let live = Store.length store in
    Store.close store;
    folded, live
  in
  let m1 = dir "m1" and m2 = dir "m2" in
  let folded1, live1 = merge_all m1 [ s1; s2; s3 ] in
  let _folded2, live2 = merge_all m2 [ s3; s1; s2 ] in
  if folded1 <> [ 10; 10; 8 ] then fail "merge: fold counts off";
  if live1 <> 20 || live2 <> 20 then
    fail "merge: expected 20 live keys, got %d and %d" live1 live2;
  if journal_bytes m1 <> journal_bytes m2 then
    fail "merge: journals differ across merge orders after canonical gc";
  (* LWW: the foreign payload for key 0 wins, durably. *)
  let s4 = dir "s4" in
  let store = open_store s4 in
  Store.put store ~key:(Value.int 0) (Value.string "superseder");
  Store.close store;
  let store = open_store m1 in
  (match Store.merge_from store s4 with
  | Ok 1 -> ()
  | Ok n -> fail "lww: folded %d records, expected 1" n
  | Error e -> fail "lww: %s" (Flm_error.to_string e));
  Store.close store;
  let store = open_store m1 in
  (match Store.find store (Value.int 0) with
  | Some v when Value.equal v (Value.string "superseder") -> ()
  | _ -> fail "lww: foreign record did not supersede the local one");
  if Store.length store <> 20 then fail "lww: key count changed";
  Store.close store;
  (* SIGKILL mid-merge: a large source makes the fsync'd fold slow enough
     to kill partway.  Whatever survives must be a valid store, and a
     re-merge must complete to the byte-identical clean result. *)
  let big = dir "big" in
  seed_source big (List.init 400 (fun i -> i + 1000));
  let clean = dir "clean" in
  let (_ : int list * int) = merge_all clean [ big ] in
  let torn = dir "torn" in
  let child =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--merge-child"; torn; big |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Unix.sleepf 0.05;
  (try Unix.kill child Sys.sigkill
   with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  let _, status = Unix.waitpid [] child in
  let killed =
    match status with
    | Unix.WSIGNALED s when s = Sys.sigkill -> true
    | Unix.WEXITED 0 -> false
    | _ -> fail "merge child ended unexpectedly"
  in
  let store = open_store torn in
  let partial = Store.length store in
  if partial > 400 then fail "mid-merge kill: %d keys from 400" partial;
  (match Store.merge_from store big with
  | Ok _ -> ()
  | Error e -> fail "re-merge: %s" (Flm_error.to_string e));
  let (_ : int) = Store.gc ~canonical:true store in
  if Store.length store <> 400 then
    fail "re-merge: expected 400 keys, got %d" (Store.length store);
  Store.close store;
  if journal_bytes torn <> journal_bytes clean then
    fail "re-merge after kill is not byte-identical to the clean merge";
  Printf.printf
    "store_smoke: merge: order-independent (byte-identical), LWW holds, %s \
     at %d/400 keys resumed to byte-identical\n%!"
    (if killed then "killed mid-merge" else "finished before the kill")
    partial;
  List.iter cleanup [ s1; s2; s3; s4; m1; m2; big; clean; torn ]

let run_parent () =
  let t0 = Unix.gettimeofday () in
  let cells, _ = sweep () in
  let duration = Unix.gettimeofday () -. t0 in
  let reference = serialize cells in
  let total = List.length cells in
  Printf.printf
    "store_smoke: reference: %d cells in %.2fs; killing at seeded points\n%!"
    total duration;
  let dirs =
    List.map (soak_round ~reference ~duration ~total) [ 11; 23; 42 ]
  in
  corruption_round ~reference ~total (List.hd dirs);
  List.iter cleanup dirs;
  merge_round ();
  print_endline "store_smoke: OK"

let () =
  match Sys.argv with
  | [| _; "--child"; dir |] -> run_child dir
  | [| _; "--merge-child"; dst; src |] -> run_merge_child dst src
  | _ -> run_parent ()
