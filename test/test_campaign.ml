(* The campaign layer, without forking a fleet: spec JSON strictness and
   round-trips, cube enumeration (counts, determinism, skip accounting),
   corpus record/replay fidelity, and the shrinker's monotonicity — the
   minimized scenario is never larger than the original on any axis and
   still reproduces the recorded violation class.  The forked-worker and
   byte-identical-merge paths live in campaign_smoke. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let spec_exn () =
  match
    Campaign_spec.make ~name:"unit" ~seed:7 ~trials:3 ~workers:1
      ~protocols:[ "flood-vote" ]
      ~strategies:[ "equivocate"; "corrupt:1" ]
      ~families:[ "cycle" ] ~n_max:5 ~f_max:2 ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "spec: %s" (Flm_error.to_string e)

(* (a) JSON: a spec round-trips exactly; omitted seed/trials/workers take
   their defaults; unknown fields, unknown protocols, and malformed
   strategies are typed rejections. *)
let spec_json () =
  let t = spec_exn () in
  (match Campaign_spec.of_json (Campaign_spec.to_json t) with
  | Ok t' -> check tbool "round-trips exactly" true (t = t')
  | Error e -> Alcotest.failf "round-trip: %s" (Flm_error.to_string e));
  let obj fields = Bench_json.Obj fields in
  let strings l = Bench_json.List (List.map (fun s -> Bench_json.String s) l) in
  let base =
    [ "name", Bench_json.String "defaults";
      "protocols", strings [ "eig" ];
      "strategies", strings [ "crash" ];
      "families", strings [ "complete" ];
      "n_max", Bench_json.Int 4;
      "f_max", Bench_json.Int 1;
    ]
  in
  (match Campaign_spec.of_json (obj base) with
  | Ok t ->
    check tint "default seed" 1 t.Campaign_spec.seed;
    check tint "default trials" 1 t.Campaign_spec.trials;
    check tint "default workers" 2 t.Campaign_spec.workers
  | Error e -> Alcotest.failf "defaults: %s" (Flm_error.to_string e));
  let rejected what fields =
    match Campaign_spec.of_json (obj fields) with
    | Error (Flm_error.Invalid_input _) -> ()
    | Error e ->
      Alcotest.failf "%s: wrong error class: %s" what (Flm_error.to_string e)
    | Ok _ -> Alcotest.failf "%s: expected a strict rejection" what
  in
  rejected "unknown field" (("workrs", Bench_json.Int 2) :: base);
  rejected "unknown protocol"
    (List.map
       (function
         | "protocols", _ -> "protocols", strings [ "paxos" ]
         | kv -> kv)
       base);
  rejected "malformed strategy"
    (List.map
       (function
         | "strategies", _ -> "strategies", strings [ "drop:nope" ]
         | kv -> kv)
       base);
  rejected "n_max too small"
    (List.map
       (function "n_max", _ -> "n_max", Bench_json.Int 2 | kv -> kv)
       base);
  rejected "zero trials" (("trials", Bench_json.Int 0) :: base)

(* (b) Enumeration: the cube's size is the product of its applicable axes,
   twice-enumerated cubes are equal, and inapplicable cells are skipped
   with reasons — never silently dropped.  On cycles only flood-vote
   applies (cycle:3 is K_3, but eig still needs n > 3f), so the eig cells
   all land in [skipped]. *)
let enumeration () =
  let t = spec_exn () in
  let cube = Campaign_spec.enumerate t in
  (* nf_grid over n<=5, f<=2 has 6 cells; flood-vote applies on all of
     them, times 2 strategies times 3 trials. *)
  check tint "cube size" (6 * 2 * 3) (List.length cube.Campaign_spec.jobs);
  check tint "nothing skipped for flood-vote" 0
    (List.length cube.Campaign_spec.skipped);
  check tbool "enumeration is deterministic" true
    (cube = Campaign_spec.enumerate t);
  match
    Campaign_spec.make ~name:"skips" ~workers:1
      ~protocols:[ "eig"; "flood-vote" ]
      ~strategies:[ "crash" ] ~families:[ "cycle" ] ~n_max:5 ~f_max:1 ()
  with
  | Error e -> Alcotest.failf "skips spec: %s" (Flm_error.to_string e)
  | Ok t ->
    let cube = Campaign_spec.enumerate t in
    check tint "flood-vote cells enumerated" 3
      (List.length cube.Campaign_spec.jobs);
    check tint "eig cells skipped with reasons" 3
      (List.length cube.Campaign_spec.skipped);
    check tbool "every skip carries a reason" true
      (List.for_all
         (fun (_, reason) -> reason <> "")
         cube.Campaign_spec.skipped)

(* The first violated trial of the unit cube, with its coordinates — the
   fixture for the corpus and shrinker tests below.  Seed 7 over
   flood-vote x cycle x {equivocate, corrupt:1} is known to violate. *)
let first_violation () =
  let cube = Campaign_spec.enumerate (spec_exn ()) in
  let entry_of = function
    | Job.Campaign_trial { protocol; family; f; seed; strategy; trial } as job
      -> (
      match Job.run job with
      | Job.Chaos outcome when not outcome.Job.survived ->
        Some
          {
            Campaign_corpus.protocol;
            family;
            f;
            seed;
            strategy;
            trial;
            outcome;
            minimized = None;
          }
      | _ -> None)
    | _ -> None
  in
  match List.find_map entry_of cube.Campaign_spec.jobs with
  | Some entry -> entry
  | None -> Alcotest.fail "the unit cube produced no violation"

(* (c) Corpus: record/find/entries round-trip through a real journaled
   store; replay reproduces the recorded outcome from coordinates alone;
   a tampered record is caught as divergence, never papered over. *)
let corpus () =
  let entry = first_violation () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_test_campaign_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let store =
    match Campaign_corpus.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "open corpus: %s" (Flm_error.to_string e)
  in
  Campaign_corpus.record store entry;
  (match Campaign_corpus.find store (Campaign_corpus.job entry) with
  | Some found -> check tbool "find returns the recorded entry" true (found = entry)
  | None -> Alcotest.fail "recorded entry not found");
  check tint "entries lists it" 1 (List.length (Campaign_corpus.entries store));
  (* Re-recording an equal entry is a no-op; superseding with a minimized
     scenario is not. *)
  let before = (Store.stat store).Store.bytes in
  Campaign_corpus.record store entry;
  check tint "equal re-record does not grow the journal" before
    (Store.stat store).Store.bytes;
  Store.close store;
  (match Campaign_corpus.replay entry with
  | Ok outcome -> check tbool "replay reproduces" true (outcome = entry.Campaign_corpus.outcome)
  | Error e -> Alcotest.failf "replay: %s" (Flm_error.to_string e));
  let tampered =
    {
      entry with
      Campaign_corpus.outcome =
        { entry.Campaign_corpus.outcome with Job.faulty = [] };
    }
  in
  (match Campaign_corpus.replay tampered with
  | Error (Flm_error.Job_failed _) -> ()
  | Ok _ -> Alcotest.fail "tampered entry should diverge on replay"
  | Error e ->
    Alcotest.failf "tampered entry: wrong error class: %s"
      (Flm_error.to_string e));
  let corpus_dir = Filename.concat dir Campaign_corpus.subdir in
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat corpus_dir f))
       (Sys.readdir corpus_dir);
     Unix.rmdir corpus_dir;
     Unix.rmdir dir
   with _ -> ())

(* (d) The shrinker: the minimized scenario is no larger than the original
   on any axis, costs the probes it reports, and still reproduces a
   violation when run standalone. *)
let shrink () =
  let entry = first_violation () in
  match Campaign_shrink.minimize entry with
  | Error e -> Alcotest.failf "minimize: %s" (Flm_error.to_string e)
  | Ok (scenario, outcome, stats) ->
    let o = stats.Campaign_shrink.original
    and s = stats.Campaign_shrink.shrunk in
    check tbool "rounds monotone" true
      (s.Campaign_shrink.rounds <= o.Campaign_shrink.rounds);
    check tbool "nodes monotone" true
      (s.Campaign_shrink.nodes <= o.Campaign_shrink.nodes);
    check tbool "actions monotone" true
      (s.Campaign_shrink.actions <= o.Campaign_shrink.actions);
    check tbool "shrunk size is the scenario's size" true
      (Campaign_shrink.size_of scenario = s);
    check tbool "at least the full-length probe ran" true
      (stats.Campaign_shrink.probes >= 1);
    check tbool "minimized outcome is a violation" true
      (not outcome.Job.survived);
    (* The scenario is self-contained: re-running it from scratch gives
       the same violating outcome. *)
    check tbool "minimized scenario reproduces standalone" true
      (Job.campaign_scenario scenario = outcome)

let suite =
  ( "campaign",
    [ Alcotest.test_case "spec json" `Quick spec_json;
      Alcotest.test_case "enumeration" `Quick enumeration;
      Alcotest.test_case "corpus" `Quick corpus;
      Alcotest.test_case "shrink" `Quick shrink;
    ] )
