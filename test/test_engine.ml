(* The parallel, memoizing certificate engine: determinism against the
   sequential reference path, cache correctness, LRU bounds, pool ordering,
   and fingerprint stability. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* (a) Determinism: parallel (jobs=4) verdicts equal sequential (jobs=1)
   verdicts, and both equal the plain Sweep reference, over a small grid. *)
let determinism () =
  let seq = Engine.create ~jobs:1 () in
  let par = Engine.create ~jobs:4 () in
  let reference = Sweep.nf_boundary ~n_max:5 ~f_max:1 in
  check tbool "sequential engine = Sweep.nf_boundary" true
    (Engine.nf_boundary seq ~n_max:5 ~f_max:1 = reference);
  check tbool "parallel engine = Sweep.nf_boundary" true
    (Engine.nf_boundary par ~n_max:5 ~f_max:1 = reference);
  let conn_reference = Sweep.connectivity_boundary ~f:1 ~kappas:[ 2; 3 ] ~n:7 in
  check tbool "parallel connectivity = Sweep.connectivity_boundary" true
    (Engine.connectivity_boundary par ~f:1 ~kappas:[ 2; 3 ] ~n:7
    = conn_reference);
  (* run_all over mixed jobs preserves input order. *)
  let jobs =
    [ Job.Nf_cell { n = 4; f = 1 };
      Job.Nf_cell { n = 3; f = 1 };
      Job.Conn_cell { kappa = 2; n = 7; f = 1 };
    ]
  in
  let via_par = Engine.run_all par jobs in
  let via_seq = List.map (fun j -> Job.run j) jobs in
  check tbool "mixed batch ordered and equal" true
    (List.for_all2 Job.equal_verdict via_par via_seq)

(* (b) Cache correctness: a memoized re-run of the same job returns an equal
   certificate and records a cache hit without re-executing. *)
let cache_correctness () =
  let eng = Engine.create ~jobs:1 () in
  let job = Job.Certify { problem = Job.Ba; n = 3; f = 1 } in
  let v1 = Engine.run_job eng job in
  let executions_after_first =
    (Metrics.snapshot (Engine.metrics eng)).Metrics.executions_run
  in
  let v2 = Engine.run_job eng job in
  check tbool "verdicts equal" true (Job.equal_verdict v1 v2);
  (match v1 with
  | Job.Cert c ->
    check tbool "triangle certificate is a contradiction" true
      c.Job.contradiction
  | Job.Cell _ | Job.Conn _ | Job.Chaos _ ->
    Alcotest.fail "expected a Cert verdict");
  let snap = Metrics.snapshot (Engine.metrics eng) in
  check tint "two jobs completed" 2 snap.Metrics.jobs_completed;
  check tint "one cache hit" 1 snap.Metrics.cache_hits;
  check tint "one cache miss" 1 snap.Metrics.cache_misses;
  check tint "hit ran nothing" executions_after_first
    snap.Metrics.executions_run;
  check tbool "hit rate 0.5" true
    (Float.abs (Metrics.hit_rate snap -. 0.5) < 1e-9)

(* (c) LRU eviction: the cache never exceeds its capacity and evicts the
   least-recently-used key first. *)
let lru_eviction () =
  let cache = Exec_cache.create ~capacity:2 () in
  let computed = ref 0 in
  let get i =
    Exec_cache.find_or_run cache
      (Fingerprint.intern (Value.int i))
      (fun () ->
        incr computed;
        i * 10)
  in
  check tint "get 1 computes" 10 (get 1);
  check tint "get 2 computes" 20 (get 2);
  check tint "two computations" 2 !computed;
  check tint "hit does not recompute" 10 (get 1);
  check tint "still two computations" 2 !computed;
  (* 2 is now least-recently-used; inserting 3 must evict it. *)
  check tint "get 3 computes" 30 (get 3);
  check tint "bounded at capacity" 2 (Exec_cache.length cache);
  check tbool "1 still cached" true
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  check tbool "2 evicted" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 2)));
  check tint "re-running 2 recomputes" 20 (get 2);
  check tint "four computations total" 4 !computed;
  check tint "still bounded" 2 (Exec_cache.length cache)

(* Evictions are otherwise invisible; the metrics hook must count each one,
   in LRU order, alongside the hits and misses find_or_run records. *)
let eviction_metrics () =
  let metrics = Metrics.create () in
  let cache = Exec_cache.create ~capacity:2 ~metrics () in
  let get i =
    Exec_cache.find_or_run cache ~metrics
      (Fingerprint.intern (Value.int i))
      (fun () -> i * 10)
  in
  List.iter (fun i -> ignore (get i)) [ 1; 2 ];
  check tint "no evictions below capacity" 0
    (Metrics.snapshot metrics).Metrics.evictions;
  ignore (get 1);
  (* 1 was refreshed, so inserting 3 then 4 evicts 2 then 1 — exactly two
     evictions, counted as they happen. *)
  ignore (get 3);
  check tint "one eviction at capacity+1" 1
    (Metrics.snapshot metrics).Metrics.evictions;
  check tbool "the LRU entry (2) went first" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 2)));
  check tbool "the refreshed entry (1) survived" true
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  ignore (get 4);
  let snap = Metrics.snapshot metrics in
  check tint "two evictions after a second overflow" 2 snap.Metrics.evictions;
  check tbool "then 1 went" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  check tint "hits counted" 1 snap.Metrics.cache_hits;
  check tint "misses counted" 4 snap.Metrics.cache_misses

(* The scenario-level memo threaded into the sweeps: a warm re-run of the
   same cell is all hits and produces the identical cell. *)
let scenario_memo () =
  let hits = ref 0 and misses = ref 0 in
  let table = Hashtbl.create 64 in
  let memo key run =
    match Hashtbl.find_opt table key with
    | Some v ->
      incr hits;
      v
    | None ->
      incr misses;
      let v = run () in
      Hashtbl.add table key v;
      v
  in
  let c1 = Sweep.nf_cell ~memo ~n:4 ~f:1 () in
  let cold_misses = !misses in
  check tbool "cold run misses" true (cold_misses > 0);
  check tint "cold run has no hits" 0 !hits;
  let c2 = Sweep.nf_cell ~memo ~n:4 ~f:1 () in
  check tbool "warm cell identical" true (c1 = c2);
  check tint "warm run adds no misses" cold_misses !misses;
  check tint "warm run is all hits" cold_misses !hits

let pool_ordering () =
  let pool = Pool.create ~jobs:4 ~queue_capacity:3 () in
  let arr = Array.init 100 Fun.id in
  check tbool "map preserves input order" true
    (Pool.map pool (fun x -> x * x) arr = Array.map (fun x -> x * x) arr);
  check tbool "map_list matches List.map" true
    (Pool.map_list pool string_of_int [ 3; 1; 2 ] = [ "3"; "1"; "2" ])

let pool_exception () =
  let pool = Pool.create ~jobs:3 () in
  match
    Pool.map pool
      (fun x -> if x >= 5 then failwith (string_of_int x) else x)
      (Array.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected the lowest failing index to raise"
  | exception Failure m -> check Alcotest.string "lowest failing index" "5" m

let fingerprints () =
  let j = Job.Nf_cell { n = 4; f = 1 } in
  check tbool "fingerprint is stable" true
    (Fingerprint.equal (Job.fingerprint j)
       (Job.fingerprint (Job.Nf_cell { n = 4; f = 1 })));
  check tbool "different jobs differ" false
    (Fingerprint.equal (Job.fingerprint j)
       (Job.fingerprint (Job.Nf_cell { n = 5; f = 1 })));
  check tbool "spec kinds differ" false
    (Fingerprint.equal
       (Job.fingerprint (Job.Nf_cell { n = 3; f = 1 }))
       (Job.fingerprint (Job.Certify { problem = Job.Ba; n = 3; f = 1 })));
  check tbool "interned keys are shared" true
    (Job.key j == Job.key (Job.Nf_cell { n = 4; f = 1 }));
  (* The encoding is prefix-unambiguous: list shape matters. *)
  check tbool "list nesting distinguishes" false
    (Fingerprint.equal
       (Fingerprint.of_value (Value.list [ Value.int 1; Value.int 2 ]))
       (Fingerprint.of_value
          (Value.list [ Value.list [ Value.int 1; Value.int 2 ] ])))

let suite =
  ( "engine",
    [ Alcotest.test_case "determinism: parallel = sequential" `Quick determinism;
      Alcotest.test_case "cache correctness" `Quick cache_correctness;
      Alcotest.test_case "LRU eviction bound" `Quick lru_eviction;
      Alcotest.test_case "eviction metrics" `Quick eviction_metrics;
      Alcotest.test_case "scenario memo" `Quick scenario_memo;
      Alcotest.test_case "pool ordering" `Quick pool_ordering;
      Alcotest.test_case "pool exception" `Quick pool_exception;
      Alcotest.test_case "fingerprints" `Quick fingerprints;
    ] )
