(* The parallel, memoizing certificate engine: determinism against the
   sequential reference path, cache correctness, LRU bounds, pool ordering,
   and fingerprint stability. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* (a) Determinism: parallel (jobs=4) verdicts equal sequential (jobs=1)
   verdicts, and both equal the plain Sweep reference, over a small grid. *)
let determinism () =
  let seq = Engine.create ~jobs:1 () in
  let par = Engine.create ~jobs:4 () in
  let reference = Sweep.nf_boundary ~n_max:5 ~f_max:1 in
  check tbool "sequential engine = Sweep.nf_boundary" true
    (Engine.nf_boundary seq ~n_max:5 ~f_max:1 = reference);
  check tbool "parallel engine = Sweep.nf_boundary" true
    (Engine.nf_boundary par ~n_max:5 ~f_max:1 = reference);
  let conn_reference = Sweep.connectivity_boundary ~f:1 ~kappas:[ 2; 3 ] ~n:7 in
  check tbool "parallel connectivity = Sweep.connectivity_boundary" true
    (Engine.connectivity_boundary par ~f:1 ~kappas:[ 2; 3 ] ~n:7
    = conn_reference);
  (* run_all over mixed jobs preserves input order. *)
  let jobs =
    [ Job.Nf_cell { n = 4; f = 1 };
      Job.Nf_cell { n = 3; f = 1 };
      Job.Conn_cell { kappa = 2; n = 7; f = 1 };
    ]
  in
  let via_par = Engine.run_all par jobs in
  let via_seq = List.map (fun j -> Job.run j) jobs in
  check tbool "mixed batch ordered and equal" true
    (List.for_all2 Job.equal_verdict via_par via_seq)

(* (b) Cache correctness: a memoized re-run of the same job returns an equal
   certificate and records a cache hit without re-executing. *)
let cache_correctness () =
  let eng = Engine.create ~jobs:1 () in
  let job = Job.Certify { problem = Job.Ba; n = 3; f = 1 } in
  let v1 = Engine.run_job eng job in
  let executions_after_first =
    (Metrics.snapshot (Engine.metrics eng)).Metrics.executions_run
  in
  let v2 = Engine.run_job eng job in
  check tbool "verdicts equal" true (Job.equal_verdict v1 v2);
  (match v1 with
  | Job.Cert c ->
    check tbool "triangle certificate is a contradiction" true
      c.Job.contradiction
  | Job.Cell _ | Job.Conn _ | Job.Chaos _ ->
    Alcotest.fail "expected a Cert verdict");
  let snap = Metrics.snapshot (Engine.metrics eng) in
  check tint "two jobs completed" 2 snap.Metrics.jobs_completed;
  check tint "one cache hit" 1 snap.Metrics.cache_hits;
  check tint "one cache miss" 1 snap.Metrics.cache_misses;
  check tint "hit ran nothing" executions_after_first
    snap.Metrics.executions_run;
  check tbool "hit rate 0.5" true
    (Float.abs (Metrics.hit_rate snap -. 0.5) < 1e-9)

(* (c) LRU eviction: the cache never exceeds its capacity and evicts the
   least-recently-used key first. *)
let lru_eviction () =
  let cache = Exec_cache.create ~capacity:2 ~stripes:1 () in
  let computed = ref 0 in
  let get i =
    Exec_cache.find_or_run cache
      (Fingerprint.intern (Value.int i))
      (fun () ->
        incr computed;
        i * 10)
  in
  check tint "get 1 computes" 10 (get 1);
  check tint "get 2 computes" 20 (get 2);
  check tint "two computations" 2 !computed;
  check tint "hit does not recompute" 10 (get 1);
  check tint "still two computations" 2 !computed;
  (* 2 is now least-recently-used; inserting 3 must evict it. *)
  check tint "get 3 computes" 30 (get 3);
  check tint "bounded at capacity" 2 (Exec_cache.length cache);
  check tbool "1 still cached" true
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  check tbool "2 evicted" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 2)));
  check tint "re-running 2 recomputes" 20 (get 2);
  check tint "four computations total" 4 !computed;
  check tint "still bounded" 2 (Exec_cache.length cache)

(* Evictions are otherwise invisible; the metrics hook must count each one,
   in LRU order, alongside the hits and misses find_or_run records. *)
let eviction_metrics () =
  let metrics = Metrics.create () in
  let cache = Exec_cache.create ~capacity:2 ~stripes:1 ~metrics () in
  let get i =
    Exec_cache.find_or_run cache ~metrics
      (Fingerprint.intern (Value.int i))
      (fun () -> i * 10)
  in
  List.iter (fun i -> ignore (get i)) [ 1; 2 ];
  check tint "no evictions below capacity" 0
    (Metrics.snapshot metrics).Metrics.evictions;
  ignore (get 1);
  (* 1 was refreshed, so inserting 3 then 4 evicts 2 then 1 — exactly two
     evictions, counted as they happen. *)
  ignore (get 3);
  check tint "one eviction at capacity+1" 1
    (Metrics.snapshot metrics).Metrics.evictions;
  check tbool "the LRU entry (2) went first" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 2)));
  check tbool "the refreshed entry (1) survived" true
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  ignore (get 4);
  let snap = Metrics.snapshot metrics in
  check tint "two evictions after a second overflow" 2 snap.Metrics.evictions;
  check tbool "then 1 went" false
    (Exec_cache.mem cache (Fingerprint.intern (Value.int 1)));
  check tint "hits counted" 1 snap.Metrics.cache_hits;
  check tint "misses counted" 4 snap.Metrics.cache_misses

(* The scenario-level memo threaded into the sweeps: a warm re-run of the
   same cell is all hits and produces the identical cell. *)
let scenario_memo () =
  let hits = ref 0 and misses = ref 0 in
  let table = Hashtbl.create 64 in
  let memo key run =
    match Hashtbl.find_opt table key with
    | Some v ->
      incr hits;
      v
    | None ->
      incr misses;
      let v = run () in
      Hashtbl.add table key v;
      v
  in
  let c1 = Sweep.nf_cell ~memo ~n:4 ~f:1 () in
  let cold_misses = !misses in
  check tbool "cold run misses" true (cold_misses > 0);
  check tint "cold run has no hits" 0 !hits;
  let c2 = Sweep.nf_cell ~memo ~n:4 ~f:1 () in
  check tbool "warm cell identical" true (c1 = c2);
  check tint "warm run adds no misses" cold_misses !misses;
  check tint "warm run is all hits" cold_misses !hits

(* Single-flight deduplication: a second domain missing on a key while the
   first is computing it must share the leader's result, not rerun the
   thunk.  The leader's thunk is gated on an atomic so the follower
   provably arrives mid-flight. *)
let single_flight () =
  let cache = Exec_cache.create ~capacity:16 () in
  let metrics = Metrics.create () in
  let key = Fingerprint.intern (Value.string "single-flight-test") in
  let runs = Atomic.make 0 in
  let release = Atomic.make false in
  let thunk () =
    Atomic.incr runs;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done;
    42
  in
  let leader =
    Domain.spawn (fun () -> Exec_cache.find_or_run cache ~metrics key thunk)
  in
  while Atomic.get runs = 0 do
    Domain.cpu_relax ()
  done;
  let about = Atomic.make false in
  let follower =
    Domain.spawn (fun () ->
        Atomic.set about true;
        Exec_cache.find_or_run cache ~metrics key thunk)
  in
  while not (Atomic.get about) do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.1;
  Atomic.set release true;
  let v1 = Domain.join leader in
  let v2 = Domain.join follower in
  check tint "leader's value" 42 v1;
  check tint "follower shares the leader's value" 42 v2;
  check tint "the thunk ran exactly once" 1 (Atomic.get runs);
  let snap = Metrics.snapshot metrics in
  check tint "one dedup recorded" 1 snap.Metrics.dedups;
  check tint "one miss (the leader's)" 1 snap.Metrics.cache_misses

(* A leader that raises abandons the flight: its waiters retry (and compute
   for themselves), and the failure is never cached. *)
let single_flight_abandon () =
  let cache = Exec_cache.create ~capacity:16 () in
  let key = Fingerprint.intern (Value.string "single-flight-abandon") in
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let leader =
    Domain.spawn (fun () ->
        match
          Exec_cache.find_or_run cache key (fun () ->
              Atomic.set entered true;
              while not (Atomic.get release) do
                Domain.cpu_relax ()
              done;
              failwith "leader boom")
        with
        | (_ : int) -> `Value
        | exception Failure _ -> `Failed)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  let about = Atomic.make false in
  let follower =
    Domain.spawn (fun () ->
        Atomic.set about true;
        Exec_cache.find_or_run cache key (fun () -> 7))
  in
  while not (Atomic.get about) do
    Domain.cpu_relax ()
  done;
  Unix.sleepf 0.1;
  Atomic.set release true;
  check tbool "the leader's own exception propagates" true
    (Domain.join leader = `Failed);
  check tint "the follower retries with its own thunk" 7 (Domain.join follower);
  check tbool "only the successful value was cached" true
    (Exec_cache.find_opt cache key = Some 7)

(* The intern table is bounded: stripes reset at capacity instead of growing
   without limit, and interned keys stay usable afterwards. *)
let intern_bound () =
  let original = Fingerprint.capacity () in
  Fingerprint.clear ();
  Fingerprint.set_capacity 64;
  let keys =
    List.init 1000 (fun i -> Fingerprint.intern (Value.int (1_000_000 + i)))
  in
  check tbool "intern table stays within its bound" true
    (Fingerprint.interned_count () <= 64);
  (* Keys dropped by a stripe reset still compare correctly (structural
     fallback) against a fresh interning of the same descriptor. *)
  check tbool "evicted keys still equal their re-interned descriptors" true
    (List.for_all
       (fun k -> Fingerprint.equal_key k (Fingerprint.intern (Fingerprint.desc k)))
       keys);
  Fingerprint.clear ();
  check tint "clear empties the table" 0 (Fingerprint.interned_count ());
  Fingerprint.set_capacity original

let pool_ordering () =
  let pool = Pool.create ~jobs:4 ~chunk:3 ~oversubscribe:true () in
  let arr = Array.init 100 Fun.id in
  check tbool "map preserves input order" true
    (Pool.map pool (fun x -> x * x) arr = Array.map (fun x -> x * x) arr);
  check tbool "map_list matches List.map" true
    (Pool.map_list pool string_of_int [ 3; 1; 2 ] = [ "3"; "1"; "2" ])

let pool_exception () =
  let pool = Pool.create ~jobs:3 ~oversubscribe:true () in
  match
    Pool.map pool
      (fun x -> if x >= 5 then failwith (string_of_int x) else x)
      (Array.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected the lowest failing index to raise"
  | exception Failure m -> check Alcotest.string "lowest failing index" "5" m

let fingerprints () =
  let j = Job.Nf_cell { n = 4; f = 1 } in
  check tbool "fingerprint is stable" true
    (Fingerprint.equal (Job.fingerprint j)
       (Job.fingerprint (Job.Nf_cell { n = 4; f = 1 })));
  check tbool "different jobs differ" false
    (Fingerprint.equal (Job.fingerprint j)
       (Job.fingerprint (Job.Nf_cell { n = 5; f = 1 })));
  check tbool "spec kinds differ" false
    (Fingerprint.equal
       (Job.fingerprint (Job.Nf_cell { n = 3; f = 1 }))
       (Job.fingerprint (Job.Certify { problem = Job.Ba; n = 3; f = 1 })));
  check tbool "interned keys are shared" true
    (Job.key j == Job.key (Job.Nf_cell { n = 4; f = 1 }));
  (* The encoding is prefix-unambiguous: list shape matters. *)
  check tbool "list nesting distinguishes" false
    (Fingerprint.equal
       (Fingerprint.of_value (Value.list [ Value.int 1; Value.int 2 ]))
       (Fingerprint.of_value
          (Value.list [ Value.list [ Value.int 1; Value.int 2 ] ])))

let suite =
  ( "engine",
    [ Alcotest.test_case "determinism: parallel = sequential" `Quick determinism;
      Alcotest.test_case "cache correctness" `Quick cache_correctness;
      Alcotest.test_case "LRU eviction bound" `Quick lru_eviction;
      Alcotest.test_case "eviction metrics" `Quick eviction_metrics;
      Alcotest.test_case "scenario memo" `Quick scenario_memo;
      Alcotest.test_case "single-flight dedup" `Quick single_flight;
      Alcotest.test_case "single-flight abandon" `Quick single_flight_abandon;
      Alcotest.test_case "intern-table bound" `Quick intern_bound;
      Alcotest.test_case "pool ordering" `Quick pool_ordering;
      Alcotest.test_case "pool exception" `Quick pool_exception;
      Alcotest.test_case "fingerprints" `Quick fingerprints;
    ] )
