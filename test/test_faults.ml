(* The fault-injection layer: PRNG determinism and stream independence,
   strategy spec parsing, the axiom property harness, and chaos-trial
   reproducibility at the job level. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

(* (a) SplitMix64: same seed same stream; derive is pure and keyed; sibling
   streams diverge; draws land in range. *)
let prng () =
  let a = Fault_prng.of_seed 42 and b = Fault_prng.of_seed 42 in
  check tbool "same seed, same draw" true
    (fst (Fault_prng.next a) = fst (Fault_prng.next b));
  check tbool "different seeds diverge" false
    (fst (Fault_prng.next a) = fst (Fault_prng.next (Fault_prng.of_seed 43)));
  let child = Fault_prng.derive a 7 in
  check tbool "derive is pure" true
    (fst (Fault_prng.next child) = fst (Fault_prng.next (Fault_prng.derive a 7)));
  check tbool "derive keys are distinct streams" false
    (fst (Fault_prng.next child) = fst (Fault_prng.next (Fault_prng.derive a 8)));
  check tbool "derive leaves the parent alone" true
    (fst (Fault_prng.next a) = fst (Fault_prng.next b));
  let l, r = Fault_prng.split a in
  check tbool "split halves diverge" false
    (fst (Fault_prng.next l) = fst (Fault_prng.next r));
  let rec bounded t k =
    if k = 0 then true
    else
      let v, t = Fault_prng.int t 10 in
      0 <= v && v < 10 && bounded t (k - 1)
  in
  check tbool "int stays in range" true (bounded a 1000);
  let xs, _ = Fault_prng.choose_distinct a ~k:4 ~bound:7 in
  check tint "choose_distinct size" 4 (List.length xs);
  check tbool "choose_distinct distinct and sorted" true
    (List.sort_uniq Int.compare xs = xs);
  check tbool "choose_distinct in bound" true (List.for_all (fun x -> x < 7) xs)

(* (b) Strategy specs: round-trips for every accepted form, typed errors for
   the malformed ones. *)
let strategy_specs () =
  let ok s =
    match Fault_strategy.of_string s with
    | Ok t -> Fault_strategy.to_string t
    | Error m -> Alcotest.failf "%s should parse: %s" s m
  in
  check tstring "drop default" "drop:0.25" (ok "drop");
  check tstring "drop with p" "drop:0.5" (ok "drop:0.5");
  check tstring "dup alias" "dup:0.25" (ok "duplicate");
  check tstring "corrupt" "corrupt:0.1" (ok "corrupt:0.1");
  check tstring "equivocate" "equivocate" (ok "equivocate");
  check tstring "replay" "replay" (ok "replay");
  check tstring "crash" "crash" (ok "crash");
  check tstring "delay" "delay:2" (ok "delay:2");
  check tstring "poison" "poison" (ok "poison");
  check tstring "stall" "stall:50" (ok "stall:50");
  check tstring "mobile default" "mobile:0.5" (ok "mobile");
  check tstring "mobile with p" "mobile:0.9" (ok "mobile:0.9");
  check tbool "chaos parses to the default mix" true
    (Fault_strategy.of_string "chaos" = Ok Fault_strategy.default_chaos);
  let bad s =
    match Fault_strategy.of_string s with Ok _ -> false | Error _ -> true
  in
  check tbool "unknown name rejected" true (bad "gremlin");
  check tbool "non-numeric probability rejected" true (bad "drop:xyz");
  check tbool "probability > 1 rejected" true (bad "drop:1.5");
  check tbool "mobile probability > 1 rejected" true (bad "mobile:2");
  check tbool "negative delay rejected" true (bad "delay:-1");
  check tbool "trailing junk rejected" true (bad "replay:1")

(* (c) Installation is deterministic: the same stream picks the same
   strategy and produces the same faulted run, twice. *)
let install_deterministic () =
  let g = Topology.complete 4 in
  let sys =
    System.make g (fun u ->
        ( Eig.device ~n:4 ~f:1 ~me:u ~default:(Value.bool false),
          Value.bool (u mod 2 = 0) ))
  in
  let rng = Fault_prng.of_seed 9 in
  let horizon = Eig.decision_round ~f:1 + 1 in
  let install () =
    Fault_strategy.install ~rng ~horizon
      ~strategy:Fault_strategy.default_chaos sys 3
  in
  let sys1, label1 = install () in
  let sys2, label2 = install () in
  check tstring "same resolved label" label1 label2;
  let t1 = Exec.run sys1 ~rounds:horizon in
  let t2 = Exec.run sys2 ~rounds:horizon in
  check tbool "same faulted trace" true
    (Result.is_ok
       (Scenario.matches ~map:Fun.id
          (Scenario.of_trace t1 (Graph.nodes g))
          (Scenario.of_trace t2 (Graph.nodes g))))

(* (d) The axiom property harness: a fuzzed batch passes, is reproducible,
   and rejects malformed family specs with a typed error. *)
let harness () =
  (match Fault_harness.run ~trials:8 ~seed:1 () with
  | Ok r ->
    check tint "all trials ran" 8 r.Fault_harness.trials;
    check tint "every trial fault-checked" 8 r.Fault_harness.fault_checks
  | Error e -> Alcotest.failf "harness failed: %s" (Flm_error.to_string e));
  (match Fault_harness.run ~trials:3 ~families:[ "complete:oops" ] ~seed:1 () with
  | Error (Flm_error.Invalid_input _) -> ()
  | Ok _ | Error _ ->
    Alcotest.fail "malformed family should be Invalid_input")

(* (e) Chaos trials are pure functions of their descriptors: equal verdicts
   on re-run, distinct cache keys across trials/seeds. *)
let chaos_jobs () =
  let job trial seed =
    Job.Chaos_trial
      { family = "complete:4"; f = 1; seed; strategy = "chaos"; trial }
  in
  check tbool "re-run equal" true
    (Job.equal_verdict (Job.run (job 0 5)) (Job.run (job 0 5)));
  check tbool "trials have distinct keys" true
    (Job.key (job 0 5) != Job.key (job 1 5));
  check tbool "seeds have distinct keys" true
    (Job.key (job 0 5) != Job.key (job 0 6));
  check tbool "same descriptor, same key" true
    (Job.key (job 0 5) == Job.key (job 0 5));
  (match Job.run (job 0 5) with
  | Job.Chaos c ->
    check tint "faulty set bounded by f" 1 (List.length c.Job.faulty)
  | _ -> Alcotest.fail "expected a Chaos verdict");
  (* An in-model chaos strategy on an adequate complete graph never breaks
     EIG: that is the possibility side of the 3f+1 bound. *)
  let survived_all =
    List.for_all
      (fun trial ->
        match Job.run (job trial 11) with
        | Job.Chaos c -> c.Job.survived
        | _ -> false)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check tbool "EIG survives in-model chaos on K4, f=1" true survived_all;
  (* Malformed family or strategy surface as typed errors from run. *)
  let typed_error job =
    match Job.run job with
    | exception Flm_error.Error (Flm_error.Invalid_input _) -> true
    | _ -> false
  in
  check tbool "bad family is Invalid_input" true
    (typed_error
       (Job.Chaos_trial
          { family = "complete:zz"; f = 1; seed = 0; strategy = "chaos";
            trial = 0 }));
  check tbool "bad strategy is Invalid_input" true
    (typed_error
       (Job.Chaos_trial
          { family = "complete:4"; f = 1; seed = 0; strategy = "gremlin";
            trial = 0 }))

(* (f) Out-of-model strategies do what the supervision layer expects:
   equivocation breaks the majority-vote strawman (violations reported, not
   crashes), and a poison step raises. *)
let out_of_model () =
  let outcome strategy family f seed =
    match
      Job.run (Job.Chaos_trial { family; f; seed; strategy; trial = 0 })
    with
    | Job.Chaos c -> c
    | _ -> Alcotest.fail "expected a Chaos verdict"
  in
  (* The cycle is inadequate for f=1 (kappa = 2 <= 2f): flood-vote is the
     strawman target, and a seed exists where equivocation splits it. *)
  let broke =
    List.exists
      (fun seed -> not (outcome "equivocate" "cycle:4" 1 seed).Job.survived)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check tbool "equivocation breaks flood-vote on the 4-cycle" true broke;
  match
    Job.run
      (Job.Chaos_trial
         { family = "complete:4"; f = 1; seed = 3; strategy = "poison";
           trial = 0 })
  with
  | exception Failure _ -> ()
  | exception e ->
    Alcotest.failf "poison should raise Failure, raised %s"
      (Printexc.to_string e)
  | _ -> Alcotest.fail "poison should raise"

(* (g) Split independence, statistically: deriving by (trial, node) and by
   (node, trial) must give independent streams — the harness fans out over
   both orders, and a correlation would couple the faults of trial i at node
   j with those of trial j at node i.  A 2x2 chi-square over the first bit
   of each stream, at every off-diagonal coordinate of a 32x32 grid (on the
   diagonal the two derivation orders are the same chain by construction, so
   those cells are excluded).  Deterministic seed: no flake. *)
let split_independence () =
  let root = Fault_prng.of_seed 2026 in
  let bit t = Int64.to_int (Int64.logand (fst (Fault_prng.next t)) 1L) in
  let counts = Array.make_matrix 2 2 0 in
  let samples = ref 0 in
  for trial = 0 to 31 do
    for node = 0 to 31 do
      if trial <> node then begin
        let a = bit (Fault_prng.derive (Fault_prng.derive root trial) node) in
        let b = bit (Fault_prng.derive (Fault_prng.derive root node) trial) in
        counts.(a).(b) <- counts.(a).(b) + 1;
        incr samples
      end
    done
  done;
  Array.iter
    (Array.iter (fun c -> check tbool "every bit pair occurs" true (c > 0)))
    counts;
  let total = float_of_int !samples in
  let row i = float_of_int (counts.(i).(0) + counts.(i).(1)) in
  let col j = float_of_int (counts.(0).(j) + counts.(1).(j)) in
  let chi2 = ref 0.0 in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let expected = row i *. col j /. total in
      let d = float_of_int counts.(i).(j) -. expected in
      chi2 := !chi2 +. (d *. d /. expected)
    done
  done;
  (* 1 degree of freedom; 10.83 is the p = 0.001 critical value. *)
  check tbool "chi-square below the 0.1% critical value" true (!chi2 < 10.83);
  (* The marginals themselves are unbiased: each order's bit is fair to
     within 4 sigma of a 50/50 coin over the sample count. *)
  let slack = 4.0 *. sqrt total /. 2.0 in
  check tbool "first-order marginal is fair" true
    (Float.abs (row 0 -. (total /. 2.0)) < slack);
  check tbool "second-order marginal is fair" true
    (Float.abs (col 0 -. (total /. 2.0)) < slack)

let suite =
  ( "faults",
    [ Alcotest.test_case "prng" `Quick prng;
      Alcotest.test_case "strategy specs" `Quick strategy_specs;
      Alcotest.test_case "install determinism" `Quick install_deterministic;
      Alcotest.test_case "axiom harness" `Quick harness;
      Alcotest.test_case "chaos jobs" `Quick chaos_jobs;
      Alcotest.test_case "out-of-model strategies" `Quick out_of_model;
      Alcotest.test_case "split independence (chi-square)" `Quick
        split_independence;
    ] )
