(* The static analyzer against inline fixtures: every rule fires at the
   expected location, each family's suppression comment silences it (and
   is counted), clean code stays clean, and malformed suppressions are
   themselves findings. *)

let check = Alcotest.check
let tint = Alcotest.int
let tstring = Alcotest.string

(* Fixture paths only steer Lint_scope; nothing is read from disk. *)
let proto = "lib/protocols/fixture.ml"
let engine = "lib/engine/fixture.ml"

let show fs =
  String.concat "; " (List.map (Format.asprintf "%a" Lint_rule.pp_finding) fs)

let expect_one ~path ~rule ~line src =
  match Flm_lint.check_source ~path src with
  | [ f ], 0 ->
    check tstring "rule id" (Lint_rule.to_string rule)
      (Lint_rule.to_string f.Lint_rule.rule);
    check tint "line" line f.Lint_rule.line
  | fs, n ->
    Alcotest.failf "expected exactly one %s, got %d finding(s) [%s] (%d supp)"
      (Lint_rule.to_string rule) (List.length fs) (show fs) n

let expect_clean ~path src =
  match Flm_lint.check_source ~path src with
  | [], 0 -> ()
  | fs, n ->
    Alcotest.failf "expected clean, got %d finding(s) [%s] (%d supp)"
      (List.length fs) (show fs) n

(* (a) Locality family, seeded one rule at a time into a protocol path. *)
let locality () =
  expect_one ~path:proto ~rule:Lint_rule.Locality_random ~line:1
    "let coin () = Random.int 2";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:1
    "let now () = Sys.time ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:2
    "let pad = ()\nlet now () = Unix.gettimeofday ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_domain ~line:1
    "let me () = Domain.self ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_hash ~line:1
    "let h x = Hashtbl.hash x";
  expect_one ~path:proto ~rule:Lint_rule.Locality_mutable_state ~line:1
    "let calls = ref 0";
  (* The same constructs are no business of the locality family outside
     the model layer: an engine file may hold a ref. *)
  expect_clean ~path:engine "let calls = ref 0"

(* (b) Concurrency family in an engine path. *)
let concurrency () =
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_condvar ~line:1
    "let w c m = Condition.wait c m";
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_nested_lock ~line:4
    "let f a b =\n\
     \  Mutex.lock a;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock a) @@ fun () ->\n\
     \  Mutex.lock b;\n\
     \  Mutex.unlock b";
  (* The blessed shapes pass: protect-with-finally, and branch-balanced
     manual pairing. *)
  expect_clean ~path:engine
    "let f m g =\n\
     \  Mutex.lock m;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock m) g";
  expect_clean ~path:engine
    "let f m p =\n\
     \  Mutex.lock m;\n\
     \  if p then begin Mutex.unlock m; 1 end\n\
     \  else begin Mutex.unlock m; 2 end";
  expect_clean ~path:engine
    "let w c m g =\n\
     \  Mutex.lock m;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock m) @@ fun () ->\n\
     \  while g () do Condition.wait c m done"

(* (c) Hygiene family. *)
let hygiene () =
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_obj_magic ~line:1
    "let cast x = Obj.magic x";
  (* obj-magic is the one repo-wide rule: it fires outside lib/ too. *)
  expect_one ~path:"test/fixture.ml" ~rule:Lint_rule.Hygiene_obj_magic ~line:1
    "let cast x = Obj.magic x";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_poly_compare ~line:1
    "let same k h = k.fp = h";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = raise (Invalid_argument \"no\")";
  (* lib/graph's Invalid_argument precondition idiom is allow-listed as a
     directory fact, with the reason on record. *)
  expect_clean ~path:"lib/graph/fixture.ml" "let g () = invalid_arg \"x\"";
  check Alcotest.bool "graph allow-list reason recorded" true
    (Lint_scope.allow_reason ~dir:"lib/graph" Lint_rule.Hygiene_untyped_raise
    <> None)

(* (c') The serve scope: Unix/sockets/domains are the daemon's job, so the
   locality family stays off in lib/serve (with the exemption on record),
   while the concurrency family and typed-raise hygiene bind exactly as in
   the engine.  The same Unix call in a protocol path still fires. *)
let serve_scope () =
  let serve = "lib/serve/fixture.ml" in
  expect_clean ~path:serve
    "let now () = Unix.gettimeofday ()\n\
     let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n\
     let me () = Domain.self ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:1
    "let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0";
  expect_one ~path:serve ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:serve ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "serve exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/serve" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c''') The resilience scope mirrors serve: retry clocks, backoff
   sleeps, and per-connection proxy domains are wall-clock, process-boundary
   code, so locality stays off with the exemption on record, while
   concurrency and typed-raise hygiene bind in full. *)
let resilience_scope () =
  let resilience = "lib/resilience/fixture.ml" in
  expect_clean ~path:resilience
    "let now () = Unix.gettimeofday ()\n\
     let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n\
     let me () = Domain.self ()";
  expect_one ~path:resilience ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:resilience ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "resilience exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/resilience" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c'') The campaign scope mirrors serve: the driver forks workers and
   reads the wall clock (the fleet boundary), so the locality family stays
   off with the exemption on record, while concurrency and typed-raise
   hygiene bind in full. *)
let campaign_scope () =
  let campaign = "lib/campaign/fixture.ml" in
  expect_clean ~path:campaign
    "let now () = Unix.gettimeofday ()\nlet spawn () = Unix.fork ()";
  expect_one ~path:campaign ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:campaign ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "campaign exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/campaign" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c'''') The system scope: the executor is bound by the locality family
   like the model layer — a nondeterministic executor would unsound every
   memo and resume tier — except locality/domain, allow-listed with its
   reason: the flat core's per-domain Domain.DLS scratch arenas and its
   atomic run counter are deterministic executor machinery. *)
let system_scope () =
  let system = "lib/system/fixture.ml" in
  expect_clean ~path:system
    "let key = Domain.DLS.new_key (fun () -> Bytes.create 64)\n\
     let me () = Domain.self ()";
  expect_one ~path:system ~rule:Lint_rule.Locality_random ~line:1
    "let coin () = Random.int 2";
  expect_one ~path:system ~rule:Lint_rule.Locality_time ~line:1
    "let now () = Unix.gettimeofday ()";
  expect_one ~path:system ~rule:Lint_rule.Locality_hash ~line:1
    "let h x = Hashtbl.hash x";
  expect_one ~path:system ~rule:Lint_rule.Locality_mutable_state ~line:1
    "let calls = ref 0";
  check Alcotest.bool "system exemption for locality/domain recorded" true
    (Lint_scope.allow_reason ~dir:"lib/system" Lint_rule.Locality_domain
    <> None)

(* (d) One suppression per family: the finding disappears and is counted. *)
let suppressions () =
  let suppressed_one ~path src =
    match Flm_lint.check_source ~path src with
    | [], 1 -> ()
    | fs, n ->
      Alcotest.failf "expected 0 findings/1 suppressed, got %d [%s] (%d supp)"
        (List.length fs) (show fs) n
  in
  suppressed_one ~path:proto
    "(* flm-lint: allow locality/random -- seeded fixture *)\n\
     let coin () = Random.int 2";
  suppressed_one ~path:engine
    "(* flm-lint: allow concurrency/lock-pairing -- fixture *)\n\
     let f m g = Mutex.lock m; g ()";
  suppressed_one ~path:engine
    "(* flm-lint: allow hygiene/untyped-raise -- fixture *)\n\
     let boom () = failwith \"no\"";
  (* A suppression only reaches the line below the comment. *)
  expect_one ~path:proto ~rule:Lint_rule.Locality_random ~line:3
    "(* flm-lint: allow locality/random -- too far away *)\n\
     let pad = ()\n\
     let coin () = Random.int 2"

(* (e) The meta rules: reasonless or unknown-rule suppressions, and files
   that do not parse. *)
let meta () =
  expect_one ~path:proto ~rule:Lint_rule.Lint_suppression ~line:1
    "(* flm-lint: allow locality/random *)\nlet ok = 1";
  expect_one ~path:proto ~rule:Lint_rule.Lint_suppression ~line:1
    "(* flm-lint: allow bogus/rule -- why *)\nlet ok = 1";
  expect_one ~path:proto ~rule:Lint_rule.Lint_parse ~line:1 "let let";
  (* Every catalog id survives the string round-trip used by reports and
     suppressions. *)
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s round-trips" (Lint_rule.to_string r))
        true
        (Lint_rule.of_string (Lint_rule.to_string r) = Some r))
    Lint_rule.all

(* (f) Clean model code is clean, and the JSON report round-trips through
   Bench_json like every other machine artifact. *)
let clean_and_json () =
  expect_clean ~path:proto "let double x = x + x\nlet twice f x = f (f x)";
  let findings, _ =
    Flm_lint.check_source ~path:proto "let coin () = Random.int 2"
  in
  let report = Lint_report.make ~findings ~suppressed:0 ~files:1 () in
  check tint "findings exit via Axiom_violation's code"
    (Flm_error.exit_code
       (Flm_error.Axiom_violation { axiom = "lint"; detail = "" }))
    (Lint_report.exit_code report);
  check tint "clean exit is 0" 0
    (Lint_report.exit_code
       (Lint_report.make ~findings:[] ~suppressed:0 ~files:1 ()));
  match Bench_json.parse (Lint_report.json_string report) with
  | Ok (Bench_json.Obj fields) ->
    check Alcotest.bool "tool field survives the round-trip" true
      (List.assoc_opt "tool" fields = Some (Bench_json.String "flm-lint"))
  | Ok _ -> Alcotest.fail "lint JSON should parse back to an object"
  | Error e -> Alcotest.failf "lint JSON failed to parse: %s" e

(* (g) Suppression lexer edge cases: a suppression on the final line of a
   file without a trailing newline, CRLF line endings, and a char literal
   containing a double quote (which must not open a phantom string and
   swallow the comment). *)
let suppress_edges () =
  let suppressed_one ~path src =
    match Flm_lint.check_source ~path src with
    | [], 1 -> ()
    | fs, n ->
      Alcotest.failf "expected 0 findings/1 suppressed, got %d [%s] (%d supp)"
        (List.length fs) (show fs) n
  in
  (* trailing comment, final line, no newline at EOF *)
  suppressed_one ~path:proto
    "let coin () = Random.int 2 (* flm-lint: allow locality/random -- \
     fixture *)";
  (* CRLF endings throughout *)
  suppressed_one ~path:proto
    "(* flm-lint: allow locality/random -- fixture *)\r\n\
     let coin () = Random.int 2\r\n";
  (* a '"' char literal before the comment *)
  suppressed_one ~path:proto
    "let q = '\"'\n\n\
     (* flm-lint: allow locality/random -- fixture *)\n\
     let coin () = Random.int 2"

(* (h) Deterministic rendering: findings sort by (file, line, rule id) and
   exact duplicates collapse, in the report constructor both formats use. *)
let determinism () =
  let f ~rule ~file ~line = Lint_rule.finding ~rule ~file ~line ~col:0 "m" in
  let a = f ~rule:Lint_rule.Locality_random ~file:"b.ml" ~line:3 in
  let b = f ~rule:Lint_rule.Locality_time ~file:"a.ml" ~line:9 in
  let c = f ~rule:Lint_rule.Locality_random ~file:"a.ml" ~line:9 in
  let report =
    Lint_report.make ~findings:[ a; b; c; a; b ] ~suppressed:0 ~files:2 ()
  in
  check tint "duplicates collapse" 3 (List.length report.Lint_report.findings);
  check Alcotest.(list string) "sorted by (file, line, rule id)"
    [ "a.ml:9:locality/random"; "a.ml:9:locality/time";
      "b.ml:3:locality/random" ]
    (List.map
       (fun (f : Lint_rule.finding) ->
         Printf.sprintf "%s:%d:%s" f.file f.line (Lint_rule.to_string f.rule))
       report.Lint_report.findings)

(* (i) The cross-module escape the deep pass exists for: a protocol calls a
   clean-looking helper whose callee draws from Random / reads the clock.
   Shallow lint passes every file; deep lint flags the protocol with the
   full multi-hop witness path. *)
let deep_escape () =
  let proto_src = "let step view = Helper.mix view\nlet at v = Helper.lag v" in
  let helper =
    "lib/core/helper.ml", "let mix v = Shuffle.pick v\nlet lag v = Clockish.now v"
  in
  let shuffle =
    "lib/core/shuffle.ml", "let pick v = List.nth v (Random.int 2)"
  in
  let clockish = "lib/core/clockish.ml", "let now _ = Unix.gettimeofday ()" in
  (* the gap deep mode closes: every file is shallow-clean on its own *)
  expect_clean ~path:proto proto_src;
  List.iter
    (fun (path, src) -> expect_clean ~path src)
    [ helper; shuffle; clockish ];
  let report =
    Flm_lint.check_sources_deep
      ~sources:[ (proto, proto_src); helper; shuffle; clockish ]
  in
  match report.Lint_report.findings with
  | [ rand; time ] ->
    check tstring "transitive-random flagged" "locality/transitive-random"
      (Lint_rule.to_string rand.Lint_rule.rule);
    check tstring "flagged in the protocol file" proto rand.Lint_rule.file;
    check tint "at the calling definition" 1 rand.Lint_rule.line;
    check Alcotest.(list string) "multi-hop witness path"
      [ "Fixture.step"; "Helper.mix"; "Shuffle.pick";
        "Random.int (lib/core/shuffle.ml:1)" ]
      rand.Lint_rule.witness;
    check tstring "transitive-time flagged" "locality/transitive-time"
      (Lint_rule.to_string time.Lint_rule.rule);
    check tint "time escape at its definition" 2 time.Lint_rule.line;
    check Alcotest.(list string) "time witness path"
      [ "Fixture.at"; "Helper.lag"; "Clockish.now";
        "Unix.gettimeofday (lib/core/clockish.ml:1)" ]
      time.Lint_rule.witness
  | fs ->
    Alcotest.failf "expected the two deep escapes, got %d [%s]"
      (List.length fs) (show fs)

(* (j) The global lock-order graph: two modules whose helpers take their
   own mutex and then call into each other — each file is shallow-clean
   (every lock is protect-paired), but the composition deadlocks. *)
let lock_sources =
  [ ( "lib/engine/locka.ml",
      "let m = Mutex.create ()\n\
       let with_a f = Mutex.lock m; Fun.protect ~finally:(fun () -> \
       Mutex.unlock m) f\n\
       let a_then_b f = with_a (fun () -> Lockb.with_b f)" );
    ( "lib/engine/lockb.ml",
      "let m = Mutex.create ()\n\
       let with_b f = Mutex.lock m; Fun.protect ~finally:(fun () -> \
       Mutex.unlock m) f\n\
       let b_then_a f = with_b (fun () -> Locka.with_a f)" ) ]

let deep_lock_order () =
  List.iter (fun (path, src) -> expect_clean ~path src) lock_sources;
  let report = Flm_lint.check_sources_deep ~sources:lock_sources in
  (match report.Lint_report.findings with
  | [ f ] ->
    check tstring "lock-order cycle flagged" "concurrency/lock-order-cycle"
      (Lint_rule.to_string f.Lint_rule.rule);
    check tstring "sited at the first held acquisition" "lib/engine/locka.ml"
      f.Lint_rule.file;
    check tint "cycle carries both acquisition sites" 2
      (List.length f.Lint_rule.witness)
  | fs ->
    Alcotest.failf "expected exactly the cycle, got %d [%s]" (List.length fs)
      (show fs));
  (* an inline suppression on one acquisition site silences the cycle; the
     comment must sit on the held-acquisition line it excuses *)
  let suppressed =
    ( "lib/engine/locka.ml",
      "let m = Mutex.create ()\n\
       let with_a f = Mutex.lock m; Fun.protect ~finally:(fun () -> \
       Mutex.unlock m) f\n\
       (* flm-lint: allow concurrency/lock-order-cycle -- ordered by \
       fixture design *)\n\
       let a_then_b f = with_a (fun () -> Lockb.with_b f)" )
    :: List.tl lock_sources
  in
  let report = Flm_lint.check_sources_deep ~sources:suppressed in
  check tint "suppressed cycle reports nothing" 0
    (List.length report.Lint_report.findings);
  check tint "and is counted" 1 report.Lint_report.suppressed

(* (k) Baseline: matching is by (rule, file, line); only new findings
   survive, and the file round-trips through Bench_json. *)
let baseline () =
  let f ~line = Lint_rule.finding ~rule:Lint_rule.Deep_random ~file:"a.ml" ~line ~col:0 "m" in
  let old = f ~line:3 in
  let fresh = f ~line:9 in
  let path = Filename.temp_file "flm-baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint_baseline.write ~path [ old ];
      match Lint_baseline.load path with
      | Error e -> Alcotest.failf "baseline failed to load: %s" e
      | Ok keys ->
        let kept, held = Lint_baseline.filter ~baseline:keys [ old; fresh ] in
        check tint "old finding held back" 1 held;
        check Alcotest.(list int) "new finding survives" [ 9 ]
          (List.map (fun (f : Lint_rule.finding) -> f.line) kept));
  check Alcotest.bool "unreadable baseline is an error, not a cold start"
    true
    (match Lint_baseline.load "/nonexistent/baseline.json" with
    | Error _ -> true
    | Ok _ -> false)

(* (l) The summary cache round-trips everything the deep pass needs, and a
   digest mismatch reads as a miss. *)
let cache_roundtrip () =
  let dir = Filename.temp_file "flm-lint-cache" "" in
  Sys.remove dir;
  let src = "let m = Mutex.create ()\nlet f x = Helper.mix x" in
  let path = "lib/engine/fixture.ml" in
  let entry = Flm_lint.summarize ~path src in
  Lint_cache.save ~dir [ entry ];
  let table = Lint_cache.load ~dir in
  (match Hashtbl.find_opt table path with
  | None -> Alcotest.fail "cache entry did not round-trip"
  | Some e ->
    check tstring "digest survives" entry.Lint_cache.digest
      e.Lint_cache.digest;
    check tint "definitions survive" 2
      (List.length e.Lint_cache.summary.Lint_callgraph.defs);
    let d = List.nth e.Lint_cache.summary.Lint_callgraph.defs 1 in
    (* the parameter [x] is collected as a (never-resolving) candidate —
       the extractor is deliberately syntactic about lowercase idents *)
    check Alcotest.(list (pair string int)) "refs survive"
      [ ("Helper.mix", 2); ("x", 2) ] d.Lint_callgraph.refs);
  check Alcotest.bool "stale digest misses" true
    (match Hashtbl.find_opt table path with
    | Some e -> e.Lint_cache.digest <> Lint_cache.digest "changed"
    | None -> false);
  Sys.remove (Filename.concat dir "summaries.json");
  Unix.rmdir dir

let suite =
  ( "lint",
    [ Alcotest.test_case "locality rules" `Quick locality;
      Alcotest.test_case "concurrency rules" `Quick concurrency;
      Alcotest.test_case "hygiene rules" `Quick hygiene;
      Alcotest.test_case "serve scope" `Quick serve_scope;
      Alcotest.test_case "resilience scope" `Quick resilience_scope;
      Alcotest.test_case "campaign scope" `Quick campaign_scope;
      Alcotest.test_case "system scope" `Quick system_scope;
      Alcotest.test_case "suppressions" `Quick suppressions;
      Alcotest.test_case "meta rules" `Quick meta;
      Alcotest.test_case "clean and json" `Quick clean_and_json;
      Alcotest.test_case "suppress edge cases" `Quick suppress_edges;
      Alcotest.test_case "deterministic output" `Quick determinism;
      Alcotest.test_case "deep cross-module escape" `Quick deep_escape;
      Alcotest.test_case "deep lock-order cycle" `Quick deep_lock_order;
      Alcotest.test_case "baseline" `Quick baseline;
      Alcotest.test_case "summary cache" `Quick cache_roundtrip;
    ] )
