(* The static analyzer against inline fixtures: every rule fires at the
   expected location, each family's suppression comment silences it (and
   is counted), clean code stays clean, and malformed suppressions are
   themselves findings. *)

let check = Alcotest.check
let tint = Alcotest.int
let tstring = Alcotest.string

(* Fixture paths only steer Lint_scope; nothing is read from disk. *)
let proto = "lib/protocols/fixture.ml"
let engine = "lib/engine/fixture.ml"

let show fs =
  String.concat "; " (List.map (Format.asprintf "%a" Lint_rule.pp_finding) fs)

let expect_one ~path ~rule ~line src =
  match Flm_lint.check_source ~path src with
  | [ f ], 0 ->
    check tstring "rule id" (Lint_rule.to_string rule)
      (Lint_rule.to_string f.Lint_rule.rule);
    check tint "line" line f.Lint_rule.line
  | fs, n ->
    Alcotest.failf "expected exactly one %s, got %d finding(s) [%s] (%d supp)"
      (Lint_rule.to_string rule) (List.length fs) (show fs) n

let expect_clean ~path src =
  match Flm_lint.check_source ~path src with
  | [], 0 -> ()
  | fs, n ->
    Alcotest.failf "expected clean, got %d finding(s) [%s] (%d supp)"
      (List.length fs) (show fs) n

(* (a) Locality family, seeded one rule at a time into a protocol path. *)
let locality () =
  expect_one ~path:proto ~rule:Lint_rule.Locality_random ~line:1
    "let coin () = Random.int 2";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:1
    "let now () = Sys.time ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:2
    "let pad = ()\nlet now () = Unix.gettimeofday ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_domain ~line:1
    "let me () = Domain.self ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_hash ~line:1
    "let h x = Hashtbl.hash x";
  expect_one ~path:proto ~rule:Lint_rule.Locality_mutable_state ~line:1
    "let calls = ref 0";
  (* The same constructs are no business of the locality family outside
     the model layer: an engine file may hold a ref. *)
  expect_clean ~path:engine "let calls = ref 0"

(* (b) Concurrency family in an engine path. *)
let concurrency () =
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_condvar ~line:1
    "let w c m = Condition.wait c m";
  expect_one ~path:engine ~rule:Lint_rule.Concurrency_nested_lock ~line:4
    "let f a b =\n\
     \  Mutex.lock a;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock a) @@ fun () ->\n\
     \  Mutex.lock b;\n\
     \  Mutex.unlock b";
  (* The blessed shapes pass: protect-with-finally, and branch-balanced
     manual pairing. *)
  expect_clean ~path:engine
    "let f m g =\n\
     \  Mutex.lock m;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock m) g";
  expect_clean ~path:engine
    "let f m p =\n\
     \  Mutex.lock m;\n\
     \  if p then begin Mutex.unlock m; 1 end\n\
     \  else begin Mutex.unlock m; 2 end";
  expect_clean ~path:engine
    "let w c m g =\n\
     \  Mutex.lock m;\n\
     \  Fun.protect ~finally:(fun () -> Mutex.unlock m) @@ fun () ->\n\
     \  while g () do Condition.wait c m done"

(* (c) Hygiene family. *)
let hygiene () =
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_obj_magic ~line:1
    "let cast x = Obj.magic x";
  (* obj-magic is the one repo-wide rule: it fires outside lib/ too. *)
  expect_one ~path:"test/fixture.ml" ~rule:Lint_rule.Hygiene_obj_magic ~line:1
    "let cast x = Obj.magic x";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_poly_compare ~line:1
    "let same k h = k.fp = h";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  expect_one ~path:engine ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = raise (Invalid_argument \"no\")";
  (* lib/graph's Invalid_argument precondition idiom is allow-listed as a
     directory fact, with the reason on record. *)
  expect_clean ~path:"lib/graph/fixture.ml" "let g () = invalid_arg \"x\"";
  check Alcotest.bool "graph allow-list reason recorded" true
    (Lint_scope.allow_reason ~dir:"lib/graph" Lint_rule.Hygiene_untyped_raise
    <> None)

(* (c') The serve scope: Unix/sockets/domains are the daemon's job, so the
   locality family stays off in lib/serve (with the exemption on record),
   while the concurrency family and typed-raise hygiene bind exactly as in
   the engine.  The same Unix call in a protocol path still fires. *)
let serve_scope () =
  let serve = "lib/serve/fixture.ml" in
  expect_clean ~path:serve
    "let now () = Unix.gettimeofday ()\n\
     let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n\
     let me () = Domain.self ()";
  expect_one ~path:proto ~rule:Lint_rule.Locality_time ~line:1
    "let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0";
  expect_one ~path:serve ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:serve ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "serve exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/serve" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c''') The resilience scope mirrors serve: retry clocks, backoff
   sleeps, and per-connection proxy domains are wall-clock, process-boundary
   code, so locality stays off with the exemption on record, while
   concurrency and typed-raise hygiene bind in full. *)
let resilience_scope () =
  let resilience = "lib/resilience/fixture.ml" in
  expect_clean ~path:resilience
    "let now () = Unix.gettimeofday ()\n\
     let sock () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n\
     let me () = Domain.self ()";
  expect_one ~path:resilience ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:resilience ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "resilience exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/resilience" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c'') The campaign scope mirrors serve: the driver forks workers and
   reads the wall clock (the fleet boundary), so the locality family stays
   off with the exemption on record, while concurrency and typed-raise
   hygiene bind in full. *)
let campaign_scope () =
  let campaign = "lib/campaign/fixture.ml" in
  expect_clean ~path:campaign
    "let now () = Unix.gettimeofday ()\nlet spawn () = Unix.fork ()";
  expect_one ~path:campaign ~rule:Lint_rule.Concurrency_lock_pairing ~line:2
    "let f m g =\n  Mutex.lock m;\n  g ()";
  expect_one ~path:campaign ~rule:Lint_rule.Hygiene_untyped_raise ~line:1
    "let boom () = failwith \"no\"";
  List.iter
    (fun rule ->
      check Alcotest.bool
        (Printf.sprintf "campaign exemption for %s recorded"
           (Lint_rule.to_string rule))
        true
        (Lint_scope.allow_reason ~dir:"lib/campaign" rule <> None))
    [ Lint_rule.Locality_time; Lint_rule.Locality_domain ]

(* (c'''') The system scope: the executor is bound by the locality family
   like the model layer — a nondeterministic executor would unsound every
   memo and resume tier — except locality/domain, allow-listed with its
   reason: the flat core's per-domain Domain.DLS scratch arenas and its
   atomic run counter are deterministic executor machinery. *)
let system_scope () =
  let system = "lib/system/fixture.ml" in
  expect_clean ~path:system
    "let key = Domain.DLS.new_key (fun () -> Bytes.create 64)\n\
     let me () = Domain.self ()";
  expect_one ~path:system ~rule:Lint_rule.Locality_random ~line:1
    "let coin () = Random.int 2";
  expect_one ~path:system ~rule:Lint_rule.Locality_time ~line:1
    "let now () = Unix.gettimeofday ()";
  expect_one ~path:system ~rule:Lint_rule.Locality_hash ~line:1
    "let h x = Hashtbl.hash x";
  expect_one ~path:system ~rule:Lint_rule.Locality_mutable_state ~line:1
    "let calls = ref 0";
  check Alcotest.bool "system exemption for locality/domain recorded" true
    (Lint_scope.allow_reason ~dir:"lib/system" Lint_rule.Locality_domain
    <> None)

(* (d) One suppression per family: the finding disappears and is counted. *)
let suppressions () =
  let suppressed_one ~path src =
    match Flm_lint.check_source ~path src with
    | [], 1 -> ()
    | fs, n ->
      Alcotest.failf "expected 0 findings/1 suppressed, got %d [%s] (%d supp)"
        (List.length fs) (show fs) n
  in
  suppressed_one ~path:proto
    "(* flm-lint: allow locality/random -- seeded fixture *)\n\
     let coin () = Random.int 2";
  suppressed_one ~path:engine
    "(* flm-lint: allow concurrency/lock-pairing -- fixture *)\n\
     let f m g = Mutex.lock m; g ()";
  suppressed_one ~path:engine
    "(* flm-lint: allow hygiene/untyped-raise -- fixture *)\n\
     let boom () = failwith \"no\"";
  (* A suppression only reaches the line below the comment. *)
  expect_one ~path:proto ~rule:Lint_rule.Locality_random ~line:3
    "(* flm-lint: allow locality/random -- too far away *)\n\
     let pad = ()\n\
     let coin () = Random.int 2"

(* (e) The meta rules: reasonless or unknown-rule suppressions, and files
   that do not parse. *)
let meta () =
  expect_one ~path:proto ~rule:Lint_rule.Lint_suppression ~line:1
    "(* flm-lint: allow locality/random *)\nlet ok = 1";
  expect_one ~path:proto ~rule:Lint_rule.Lint_suppression ~line:1
    "(* flm-lint: allow bogus/rule -- why *)\nlet ok = 1";
  expect_one ~path:proto ~rule:Lint_rule.Lint_parse ~line:1 "let let";
  (* Every catalog id survives the string round-trip used by reports and
     suppressions. *)
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s round-trips" (Lint_rule.to_string r))
        true
        (Lint_rule.of_string (Lint_rule.to_string r) = Some r))
    Lint_rule.all

(* (f) Clean model code is clean, and the JSON report round-trips through
   Bench_json like every other machine artifact. *)
let clean_and_json () =
  expect_clean ~path:proto "let double x = x + x\nlet twice f x = f (f x)";
  let findings, _ =
    Flm_lint.check_source ~path:proto "let coin () = Random.int 2"
  in
  let report = { Lint_report.findings; suppressed = 0; files = 1 } in
  check tint "findings exit via Axiom_violation's code"
    (Flm_error.exit_code
       (Flm_error.Axiom_violation { axiom = "lint"; detail = "" }))
    (Lint_report.exit_code report);
  check tint "clean exit is 0" 0
    (Lint_report.exit_code { Lint_report.findings = []; suppressed = 0; files = 1 });
  match Bench_json.parse (Lint_report.json_string report) with
  | Ok (Bench_json.Obj fields) ->
    check Alcotest.bool "tool field survives the round-trip" true
      (List.assoc_opt "tool" fields = Some (Bench_json.String "flm-lint"))
  | Ok _ -> Alcotest.fail "lint JSON should parse back to an object"
  | Error e -> Alcotest.failf "lint JSON failed to parse: %s" e

let suite =
  ( "lint",
    [ Alcotest.test_case "locality rules" `Quick locality;
      Alcotest.test_case "concurrency rules" `Quick concurrency;
      Alcotest.test_case "hygiene rules" `Quick hygiene;
      Alcotest.test_case "serve scope" `Quick serve_scope;
      Alcotest.test_case "resilience scope" `Quick resilience_scope;
      Alcotest.test_case "campaign scope" `Quick campaign_scope;
      Alcotest.test_case "system scope" `Quick system_scope;
      Alcotest.test_case "suppressions" `Quick suppressions;
      Alcotest.test_case "meta rules" `Quick meta;
      Alcotest.test_case "clean and json" `Quick clean_and_json;
    ] )
