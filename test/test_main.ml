let () =
  Alcotest.run "flm"
    [ Test_value.suite;
      Test_graph.suite;
      Test_connectivity.suite;
      Test_covering.suite;
      Test_system.suite;
      Test_eig.suite;
      Test_protocols.suite;
      Test_impossibility.suite;
      Test_clocks.suite;
      Test_compose.suite;
      Test_infra.suite;
      Test_extensions.suite;
      Test_collapse.suite;
      Test_properties.suite;
      Test_crusader.suite;
      Test_sweep.suite;
      Test_engine.suite;
      Test_store.suite;
      Test_faults.suite;
      Test_supervision.suite;
      Test_edge_cases.suite;
      Test_lint.suite;
      Test_serve.suite;
      Test_resilience.suite;
      Test_campaign.suite;
    ]
