(* The resilience layer, without a daemon: policy validation and the
   deterministic backoff schedule, the retryable-vs-terminal
   classification, the breaker state machine under a fake clock, the
   retry loop's accounting against a dead socket (with a fake sleep), and
   the chaos proxy's strategy validation. *)

let check = Alcotest.check

let policy_validation () =
  let ok p =
    match Resil_policy.validate p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "policy rejected: %s" (Flm_error.to_string e)
  in
  let rejected p =
    match Resil_policy.validate p with
    | Error (Flm_error.Invalid_input _) -> ()
    | _ -> Alcotest.fail "expected Invalid_input"
  in
  ok Resil_policy.default;
  rejected { Resil_policy.default with Resil_policy.retries = -1 };
  rejected { Resil_policy.default with Resil_policy.base_backoff_ms = 0 };
  rejected
    { Resil_policy.default with Resil_policy.base_backoff_ms = 100; max_backoff_ms = 50 };
  rejected { Resil_policy.default with Resil_policy.io_timeout_ms = 0 };
  rejected { Resil_policy.default with Resil_policy.deadline_ms = Some 0 };
  ok { Resil_policy.default with Resil_policy.deadline_ms = Some 1 }

let backoff () =
  let p =
    { Resil_policy.default with Resil_policy.base_backoff_ms = 10; max_backoff_ms = 200 }
  in
  (* Deterministic: the same stream yields the same schedule. *)
  let schedule seed =
    let rec go rng prev n acc =
      if n = 0 then List.rev acc
      else
        let d, rng = Resil_policy.backoff_ms p ~rng ~prev_ms:prev in
        go rng d (n - 1) (d :: acc)
    in
    go (Fault_prng.of_seed seed) p.Resil_policy.base_backoff_ms 20 []
  in
  check Alcotest.(list int) "same seed, same schedule" (schedule 7) (schedule 7);
  check Alcotest.bool "different seeds diverge" true (schedule 7 <> schedule 8);
  (* Every draw lies in [base, cap]. *)
  List.iter
    (fun d ->
      check Alcotest.bool "within bounds" true (d >= 10 && d <= 200))
    (schedule 7)

let classification () =
  let t = Alcotest.bool in
  let is_retry src e = Resil_policy.classify src e = Resil_policy.Retry in
  (* Transport failures always retry: requests are idempotent queries. *)
  check t "transport net retries" true
    (is_retry `Transport (Flm_error.net ~endpoint:"s" "refused"));
  (* Server answers: transient classes retry... *)
  check t "worker crash retries" true
    (is_retry `Server (Flm_error.Worker_crashed { detail = "lost domain" }));
  check t "overload refusal retries" true
    (is_retry `Server (Flm_error.net ~endpoint:"s" "server at capacity"));
  (* ...deterministic classes do not. *)
  check t "invalid input fails" false
    (is_retry `Server (Flm_error.Invalid_input { what = "n"; detail = "neg" }));
  check t "job failure fails" false
    (is_retry `Server (Flm_error.Job_failed { job = "c"; exn = "Boom" }));
  check t "timeout fails" false
    (is_retry `Server (Flm_error.Job_timeout { job = "c"; timeout_ms = 5 }));
  check t "axiom violation fails" false
    (is_retry `Server (Flm_error.Axiom_violation { axiom = "l"; detail = "d" }));
  check t "store corruption fails" false
    (is_retry `Server (Flm_error.Store_corrupt { path = "p"; offset = 0; detail = "crc" }))

(* The breaker under a hand-cranked clock: trip, refuse, cool down,
   half-open probe, close on success / re-open on failure. *)
let breaker () =
  let clock = ref 0.0 in
  let cfg =
    { Resil_breaker.failure_threshold = 3; cooldown_ms = 1_000; half_open_probes = 1 }
  in
  (match Resil_breaker.validate cfg with
  | Ok () -> ()
  | Error e -> Alcotest.failf "config rejected: %s" (Flm_error.to_string e));
  (match Resil_breaker.validate { cfg with Resil_breaker.failure_threshold = 0 } with
  | Error (Flm_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "zero threshold should be rejected");
  let b = Resil_breaker.create ~now:(fun () -> !clock) cfg in
  let st = Alcotest.bool in
  check st "starts closed" true (Resil_breaker.state b = Resil_breaker.Closed);
  (* Failures below the threshold keep it closed; a success resets. *)
  Resil_breaker.fail b;
  Resil_breaker.fail b;
  Resil_breaker.succeed b;
  check Alcotest.int "success resets the count" 0 (Resil_breaker.failures b);
  Resil_breaker.fail b;
  Resil_breaker.fail b;
  check st "still closed below threshold" true
    (Resil_breaker.state b = Resil_breaker.Closed);
  Resil_breaker.fail b;
  check st "trips at threshold" true (Resil_breaker.state b = Resil_breaker.Open);
  (* Open: acquire refuses with the remaining cooldown. *)
  (match Resil_breaker.acquire b with
  | Error ms -> check Alcotest.bool "retry hint within cooldown" true (ms > 0 && ms <= 1_000)
  | Ok () -> Alcotest.fail "open breaker should refuse");
  (* After the cooldown, one probe is admitted (half-open)... *)
  clock := !clock +. 1.2;
  (match Resil_breaker.acquire b with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cooldown elapsed; a probe should be admitted");
  check st "half-open while probing" true
    (Resil_breaker.state b = Resil_breaker.Half_open);
  (* ...and a second concurrent caller is not. *)
  (match Resil_breaker.acquire b with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "probe quota is 1");
  (* Probe failure re-opens with a fresh cooldown. *)
  Resil_breaker.fail b;
  check st "probe failure re-opens" true (Resil_breaker.state b = Resil_breaker.Open);
  (match Resil_breaker.acquire b with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fresh cooldown should refuse");
  (* Next cooldown, probe succeeds: closed and counting from zero. *)
  clock := !clock +. 1.2;
  (match Resil_breaker.acquire b with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "second probe should be admitted");
  Resil_breaker.succeed b;
  check st "probe success closes" true (Resil_breaker.state b = Resil_breaker.Closed);
  check Alcotest.int "count cleared" 0 (Resil_breaker.failures b)

(* The retry loop against a socket nobody listens on: bounded attempts,
   counted sleeps (injected, so the test is instant), a typed terminal
   error, and — with a shared tripped breaker — instant rejection. *)
let client_retries () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_resil_none_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sleeps = ref [] in
  let policy =
    {
      Resil_policy.retries = 3;
      base_backoff_ms = 10;
      max_backoff_ms = 100;
      io_timeout_ms = 1_000;
      deadline_ms = None;
    }
  in
  let breaker_cfg =
    (* High threshold: this test watches the retry loop, not the trip. *)
    { Resil_breaker.failure_threshold = 100; cooldown_ms = 1_000; half_open_probes = 1 }
  in
  let client =
    match
      Resil_client.create ~policy ~breaker_config:breaker_cfg ~seed:42
        ~sleep:(fun s -> sleeps := s :: !sleeps)
        ~socket_path:path ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "create: %s" (Flm_error.to_string e)
  in
  let req = { Serve_proto.Request.op = Serve_proto.Request.Stats; timeout_ms = None } in
  (match Resil_client.request client req with
  | Error (Flm_error.Net _) -> ()
  | Ok _ -> Alcotest.fail "no listener: the call must fail"
  | Error e -> Alcotest.failf "expected Net, got %s" (Flm_error.to_string e));
  let s = Resil_client.stats client in
  check Alcotest.int "attempts = retries + 1" 4 s.Resil_client.attempts;
  check Alcotest.int "retries counted" 3 s.Resil_client.retries;
  check Alcotest.int "one backoff per retry" 3 (List.length !sleeps);
  List.iter
    (fun s ->
      check Alcotest.bool "sleep within policy bounds" true
        (s >= 0.01 && s <= 0.1))
    !sleeps;
  (* Same seed, same socket: the schedule replays exactly. *)
  let sleeps2 = ref [] in
  let client2 =
    match
      Resil_client.create ~policy ~breaker_config:breaker_cfg ~seed:42
        ~sleep:(fun s -> sleeps2 := s :: !sleeps2)
        ~socket_path:path ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "create: %s" (Flm_error.to_string e)
  in
  ignore (Resil_client.request client2 req);
  check Alcotest.(list (float 1e-9)) "deterministic backoff schedule" !sleeps
    !sleeps2;
  Resil_client.close client2;
  (* A tripped shared breaker rejects without touching the wire. *)
  let tripped =
    Resil_breaker.create
      { Resil_breaker.failure_threshold = 1; cooldown_ms = 60_000; half_open_probes = 1 }
  in
  Resil_breaker.fail tripped;
  let client3 =
    match
      Resil_client.create ~policy ~breaker:tripped ~seed:0
        ~sleep:(fun _ -> Alcotest.fail "an open breaker must not back off")
        ~socket_path:path ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "create: %s" (Flm_error.to_string e)
  in
  (match Resil_client.request client3 req with
  | Error (Flm_error.Net { detail; _ }) ->
    check Alcotest.bool "error names the open circuit" true
      (String.length detail >= 12 && String.sub detail 0 12 = "circuit open")
  | _ -> Alcotest.fail "open breaker should yield a typed Net error");
  let s3 = Resil_client.stats client3 in
  check Alcotest.int "no wire attempts" 0 s3.Resil_client.attempts;
  check Alcotest.int "rejection counted" 1 s3.Resil_client.breaker_rejections;
  Resil_client.close client3;
  Resil_client.close client

let proxy_strategies () =
  let ok s =
    match Chaos_proxy.wire_strategy s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "wire strategy rejected: %s" e
  in
  let rejected s =
    match Chaos_proxy.wire_strategy s with
    | Error _ -> ()
    | Ok () ->
      Alcotest.failf "%s should have no wire meaning"
        (Fault_strategy.to_string s)
  in
  ok (Fault_strategy.Drop 0.2);
  ok (Fault_strategy.Duplicate 0.1);
  ok (Fault_strategy.Corrupt 0.3);
  ok Fault_strategy.Crash_midway;
  ok (Fault_strategy.Delay 2);
  ok (Fault_strategy.Mobile 0.25);
  ok (Fault_strategy.Chaos [ (3, Fault_strategy.Drop 0.2); (1, Fault_strategy.Delay 1) ]);
  rejected Fault_strategy.Equivocate;
  rejected Fault_strategy.Replay;
  rejected Fault_strategy.Poison;
  rejected (Fault_strategy.Stall 5);
  rejected (Fault_strategy.Chaos []);
  (* Rejection recurses through a mix. *)
  rejected (Fault_strategy.Chaos [ (1, Fault_strategy.Drop 0.1); (1, Fault_strategy.Poison) ]);
  (* A proxy config with an out-of-model strategy is refused up front. *)
  match
    Chaos_proxy.run
      {
        Chaos_proxy.socket_path = "/tmp/flm_never.sock";
        upstream = "/tmp/flm_never_up.sock";
        seed = 1;
        strategy = Fault_strategy.Poison;
        delay_unit_ms = Chaos_proxy.default_delay_unit_ms;
      }
  with
  | Error (Flm_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "proxy must refuse a non-wire strategy"

let suite =
  ( "resilience",
    [ Alcotest.test_case "policy validation" `Quick policy_validation;
      Alcotest.test_case "backoff schedule" `Quick backoff;
      Alcotest.test_case "classification" `Quick classification;
      Alcotest.test_case "breaker" `Quick breaker;
      Alcotest.test_case "client retries" `Quick client_retries;
      Alcotest.test_case "proxy strategies" `Quick proxy_strategies;
    ] )
