(* The serve wire protocol, without a daemon: schema round-trips for every
   request op, verdict kind, and error class; strict-validation rejections
   (unknown fields, wrong version, out-of-range sizes); and the length
   framing over a real pipe, including the violations that must be typed
   as Net errors. *)

let check = Alcotest.check
let tstring = Alcotest.string

let json_str j = Bench_json.to_string j

let roundtrip_request r =
  match Serve_proto.Request.of_json (Serve_proto.Request.to_json r) with
  | Ok r' ->
    check tstring
      (Printf.sprintf "request %s round-trips" (Serve_proto.Request.label r))
      (json_str (Serve_proto.Request.to_json r))
      (json_str (Serve_proto.Request.to_json r'))
  | Error e -> Alcotest.failf "request failed to round-trip: %s" e

let requests () =
  List.iter roundtrip_request
    [ {
        Serve_proto.Request.op =
          Serve_proto.Request.Certify { problem = Job.Ba; n = 3; f = 1 };
        timeout_ms = None;
      };
      {
        Serve_proto.Request.op =
          Serve_proto.Request.Certify
            { problem = Job.Ba_collapse; n = 5; f = 2 };
        timeout_ms = Some 250;
      };
      {
        Serve_proto.Request.op =
          Serve_proto.Request.Chaos
            {
              family = "harary:3:7";
              f = 1;
              seed = 42;
              strategy = "chaos";
              trials = 10;
            };
        timeout_ms = None;
      };
      {
        Serve_proto.Request.op = Serve_proto.Request.Sweep { n_max = 8; f_max = 2 };
        timeout_ms = Some 60_000;
      };
      { Serve_proto.Request.op = Serve_proto.Request.Store_stat; timeout_ms = None };
      { Serve_proto.Request.op = Serve_proto.Request.Stats; timeout_ms = None };
      { Serve_proto.Request.op = Serve_proto.Request.Ping; timeout_ms = None };
    ]

let ping_payload () =
  let p =
    {
      Serve_proto.Ping.draining = true;
      sessions = 3;
      max_sessions = 16;
      requests = 101;
      ok = 99;
      failed = 2;
      jobs = 4;
      store_attached = false;
    }
  in
  (match Serve_proto.Ping.of_json (Serve_proto.Ping.to_json p) with
  | Ok p' ->
    check Alcotest.bool "ping round-trips" true (p = p')
  | Error e -> Alcotest.failf "ping failed to round-trip: %s" e);
  (* Strict like every other document: unknown fields rejected. *)
  match
    Serve_proto.Ping.of_json
      (match Serve_proto.Ping.to_json p with
      | Bench_json.Obj fields ->
        Bench_json.Obj (("extra", Bench_json.Int 1) :: fields)
      | j -> j)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown ping field should be rejected"

let socket_paths () =
  (match Serve_proto.validate_socket_path "/tmp/ok.sock" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "short path rejected: %s" (Flm_error.to_string e));
  (match Serve_proto.validate_socket_path "" with
  | Error (Flm_error.Net _) -> ()
  | _ -> Alcotest.fail "empty path should be a typed Net error");
  let long = "/tmp/" ^ String.make (Serve_proto.max_socket_path + 1) 'x' in
  (match Serve_proto.validate_socket_path long with
  | Error (Flm_error.Net { detail; _ }) ->
    check Alcotest.bool "over-long detail names the limit" true
      (let needle = string_of_int Serve_proto.max_socket_path in
       let rec find i =
         i + String.length needle <= String.length detail
         && (String.sub detail i (String.length needle) = needle || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail "over-long path should be a typed Net error");
  (* The boundary value passes. *)
  match Serve_proto.validate_socket_path (String.make Serve_proto.max_socket_path 'y') with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "boundary-length path rejected: %s" (Flm_error.to_string e)

let expect_reject what json =
  match Serve_proto.Request.of_json json with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a strict rejection" what

let strictness () =
  let obj fields = Bench_json.Obj fields in
  let v = "v", Bench_json.Int Serve_proto.protocol_version in
  let op o = "op", Bench_json.String o in
  (* wrong version *)
  expect_reject "wrong version"
    (obj [ "v", Bench_json.Int 99; op "stats" ]);
  (* missing version *)
  expect_reject "missing version" (obj [ op "stats" ]);
  (* unknown op *)
  expect_reject "unknown op" (obj [ v; op "frobnicate" ]);
  (* unknown field: a misspelled option must never be silently ignored *)
  expect_reject "unknown field"
    (obj [ v; op "stats"; "timeout", Bench_json.Int 5 ]);
  (* missing required field *)
  expect_reject "missing field"
    (obj [ v; op "sweep"; "n_max", Bench_json.Int 6 ]);
  (* out-of-range sizes *)
  expect_reject "oversized sweep"
    (obj
       [ v; op "sweep"; "n_max", Bench_json.Int 1000; "f_max", Bench_json.Int 1 ]);
  expect_reject "zero trials"
    (obj
       [ v; op "chaos";
         "family", Bench_json.String "complete:4";
         "f", Bench_json.Int 1;
         "seed", Bench_json.Int 1;
         "strategy", Bench_json.String "drop";
         "trials", Bench_json.Int 0;
       ]);
  expect_reject "zero timeout"
    (obj [ v; op "stats"; "timeout_ms", Bench_json.Int 0 ]);
  expect_reject "unknown problem"
    (obj
       [ v; op "certify";
         "problem", Bench_json.String "weak";
         "n", Bench_json.Int 3;
         "f", Bench_json.Int 1;
       ]);
  (* not an object at all *)
  expect_reject "not an object" (Bench_json.List [])

let verdicts () =
  let roundtrip v =
    match Serve_proto.Verdict.of_json (Serve_proto.Verdict.to_json v) with
    | Ok v' ->
      check Alcotest.bool "verdict round-trips" true
        (Serve_proto.Verdict.equal v v')
    | Error e -> Alcotest.failf "verdict failed to round-trip: %s" e
  in
  roundtrip
    (Serve_proto.Verdict.Cell
       {
         Sweep.n = 4;
         f = 1;
         adequate = true;
         survived_attacks = Some true;
         certificate_broke_it = None;
       });
  roundtrip (Serve_proto.Verdict.Conn (3, true, Some true, None));
  roundtrip
    (Serve_proto.Verdict.Cert
       { contradiction = true; summary = "CONTRADICTION in E3" });
  roundtrip
    (Serve_proto.Verdict.Chaos
       {
         Job.trial = 2;
         seed = 42;
         strategy = "2:crash@3";
         faulty = [ 2 ];
         survived = false;
         violations = [ "agreement: nodes 0,1 decided differently" ];
       });
  (* A verdict projected from a live job round-trips too. *)
  let v =
    Serve_proto.Verdict.of_job_verdict
      (Job.run (Job.Certify { problem = Job.Ba; n = 3; f = 1 }))
  in
  roundtrip v

let errors () =
  List.iter
    (fun e ->
      match Serve_proto.error_of_json (Serve_proto.error_to_json e) with
      | Ok e' ->
        check Alcotest.bool
          (Printf.sprintf "error %s round-trips" (Flm_error.to_string e))
          true (Flm_error.equal e e')
      | Error m -> Alcotest.failf "error failed to round-trip: %s" m)
    [ Flm_error.Invalid_input { what = "n"; detail = "negative" };
      Flm_error.Job_failed { job = "cert"; exn = "Boom" };
      Flm_error.Job_timeout { job = "cert"; timeout_ms = 5 };
      Flm_error.Worker_crashed { detail = "lost domain" };
      Flm_error.Axiom_violation { axiom = "locality"; detail = "peeked" };
      Flm_error.Store_corrupt { path = "j.flm"; offset = 17; detail = "crc" };
      Flm_error.Net { endpoint = "/tmp/s.sock"; detail = "refused" };
    ];
  (* The wire carries the class's stable exit code alongside the payload. *)
  let e = Flm_error.Net { endpoint = "s"; detail = "d" } in
  match Serve_proto.error_to_json e with
  | Bench_json.Obj fields ->
    check Alcotest.(option int) "exit_code on the wire"
      (Some (Flm_error.exit_code e))
      (Option.bind (List.assoc_opt "exit_code" fields) Bench_json.to_int_opt)
  | _ -> Alcotest.fail "error_to_json should produce an object"

let responses () =
  let roundtrip r =
    match Serve_proto.Response.of_json (Serve_proto.Response.to_json r) with
    | Ok r' ->
      check tstring "response round-trips"
        (json_str (Serve_proto.Response.to_json r))
        (json_str (Serve_proto.Response.to_json r'))
    | Error e -> Alcotest.failf "response failed to round-trip: %s" e
  in
  roundtrip (Serve_proto.Response.Result (Bench_json.Int 7));
  roundtrip
    (Serve_proto.Response.Failed
       (Flm_error.Job_timeout { job = "sweep"; timeout_ms = 9 }));
  (* Unknown status strings fail closed. *)
  match
    Serve_proto.Response.of_json
      (Bench_json.Obj
         [ "v", Bench_json.Int Serve_proto.protocol_version;
           "status", Bench_json.String "maybe";
         ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown status should be rejected"

let framing () =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () ->
      (* A frame written is the frame read. *)
      (match Serve_proto.write_frame ~endpoint:"pipe" wr "hello" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Flm_error.to_string e));
      (match Serve_proto.read_frame ~endpoint:"pipe" rd with
      | Ok (Serve_proto.Frame s) -> check tstring "payload" "hello" s
      | _ -> Alcotest.fail "expected a frame");
      (* The length prefix is 4-byte big-endian. *)
      check tstring "frame bytes" "\x00\x00\x00\x02ab" (Serve_proto.frame "ab");
      (* A zero length prefix is a typed protocol violation. *)
      ignore (Unix.write wr (Bytes.make 4 '\000') 0 4);
      (match Serve_proto.read_frame ~endpoint:"pipe" rd with
      | Error (Flm_error.Net _) -> ()
      | _ -> Alcotest.fail "zero-length frame should be a Net error");
      (* An oversized length prefix likewise. *)
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 (Int32.of_int (Serve_proto.max_frame_bytes + 1));
      ignore (Unix.write wr b 0 4);
      (match Serve_proto.read_frame ~endpoint:"pipe" rd with
      | Error (Flm_error.Net _) -> ()
      | _ -> Alcotest.fail "oversized frame should be a Net error");
      (* A connection dying mid-frame is a Net error, not an Eof. *)
      ignore
        (Unix.write_substring wr (Serve_proto.frame "truncated") 0 7);
      Unix.close wr;
      (match Serve_proto.read_frame ~endpoint:"pipe" rd with
      | Error (Flm_error.Net _) -> ()
      | _ -> Alcotest.fail "mid-frame death should be a Net error");
      (* An orderly close before any byte is Eof. *)
      let rd2, wr2 = Unix.pipe () in
      Unix.close wr2;
      (match Serve_proto.read_frame ~endpoint:"pipe" rd2 with
      | Ok Serve_proto.Eof -> ()
      | _ -> Alcotest.fail "clean close should be Eof");
      Unix.close rd2;
      (* A close mid-header (2 of 4 length bytes) is a Net error too. *)
      let rd3, wr3 = Unix.pipe () in
      ignore (Unix.write_substring wr3 (Serve_proto.frame "x") 0 2);
      Unix.close wr3;
      (match Serve_proto.read_frame ~endpoint:"pipe" rd3 with
      | Error (Flm_error.Net _) -> ()
      | _ -> Alcotest.fail "mid-header death should be a Net error");
      Unix.close rd3)

(* A transport failure mid-response leaves the stream in an undefined
   framing state; the client handle must poison itself and fail fast from
   then on, never reading desynchronized bytes as frames.  Served by a
   minimal in-process accept: Unix streams buffer a whole small frame, so
   no concurrency is needed. *)
let client_poisoning () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_poison_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listen_fd (Unix.ADDR_UNIX path);
      Unix.listen listen_fd 1;
      let client =
        match Serve_client.connect ~timeout_ms:2_000 ~socket_path:path () with
        | Ok c -> c
        | Error e -> Alcotest.failf "connect: %s" (Flm_error.to_string e)
      in
      let server_fd, _ = Unix.accept listen_fd in
      check Alcotest.bool "fresh handle is unpoisoned" true
        (Serve_client.poisoned client = None);
      (* The server dies mid-frame: half a response, then close. *)
      ignore (Unix.write_substring server_fd (Serve_proto.frame "{\"v\":1}") 0 6);
      Unix.close server_fd;
      let req = { Serve_proto.Request.op = Serve_proto.Request.Stats; timeout_ms = None } in
      (match Serve_client.request client req with
      | Error (Flm_error.Net _) -> ()
      | Ok _ -> Alcotest.fail "mid-frame death should fail the request"
      | Error e ->
        Alcotest.failf "expected a Net error, got %s" (Flm_error.to_string e));
      check Alcotest.bool "handle is poisoned" true
        (Serve_client.poisoned client <> None);
      (* Every later request fails fast with a typed error naming the
         original failure — no socket I/O is attempted. *)
      (match Serve_client.request client req with
      | Error (Flm_error.Net { detail; _ }) ->
        check Alcotest.bool "poisoned detail names the earlier error" true
          (String.length detail > 0)
      | _ -> Alcotest.fail "poisoned handle should fail fast with Net");
      Serve_client.close client)

let suite =
  ( "serve-proto",
    [ Alcotest.test_case "request round-trips" `Quick requests;
      Alcotest.test_case "strict validation" `Quick strictness;
      Alcotest.test_case "verdict round-trips" `Quick verdicts;
      Alcotest.test_case "error round-trips" `Quick errors;
      Alcotest.test_case "response round-trips" `Quick responses;
      Alcotest.test_case "ping payload" `Quick ping_payload;
      Alcotest.test_case "socket paths" `Quick socket_paths;
      Alcotest.test_case "framing" `Quick framing;
      Alcotest.test_case "client poisoning" `Quick client_poisoning;
    ] )
