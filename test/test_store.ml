(* The persistence layer: CRC vectors, codec canonicity, journal crash
   safety (torn tails, bit flips, bad magic), store semantics across
   reopen/gc, and the engine's checkpoint/resume tier. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flm_store_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun f -> Sys.remove (Filename.concat d f))
    (Sys.readdir d);
  d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Flip one byte of the file at [off]. *)
let flip_byte path off =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xFF));
  write_file path (Bytes.to_string s)

let truncate_file path n = write_file path (String.sub (read_file path) 0 n)

(* (a) CRC-32: the zlib check vector, the empty string, and incremental
   chaining agreeing with the one-shot form. *)
let crc32 () =
  check tint "zlib check vector" 0xCBF43926 (Crc32.string "123456789");
  check tint "empty string" 0 (Crc32.string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split =
    Crc32.update
      (Crc32.update 0 s ~pos:0 ~len:10)
      s ~pos:10
      ~len:(String.length s - 10)
  in
  check tint "incremental = one-shot" (Crc32.string s) split

(* (b) The codec is a canonical bijection on the values we persist: every
   shape round-trips, equal values encode to equal bytes, and malformed
   input (trailing garbage, unknown tags, future versions) is rejected
   rather than misread. *)
let codec () =
  let samples =
    [ Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int max_int;
      Value.int min_int;
      Value.float 3.14159;
      Value.float (-0.0);
      Value.string "";
      Value.string "with \000 nul and \xff bytes";
      Value.pair (Value.int 1) (Value.string "x");
      Value.list [];
      Value.list [ Value.int 1; Value.list [ Value.bool true ]; Value.unit ];
      Value.tag "verdict:cell"
        (Value.list [ Value.int 7; Value.int 2; Value.bool false ]);
      Value.triple (Value.int 1) (Value.int 2) (Value.int 3);
    ]
  in
  List.iter
    (fun v ->
      check tbool "round-trips" true
        (Value.equal v (Store_codec.decode (Store_codec.encode v))))
    samples;
  check tstring "canonical: equal values, equal bytes"
    (Store_codec.encode (Value.list [ Value.int 1; Value.int 2 ]))
    (Store_codec.encode (Value.list [ Value.int 1; Value.int 2 ]));
  check tbool "distinct values, distinct bytes" false
    (Store_codec.encode (Value.list [ Value.int 1; Value.int 2 ])
    = Store_codec.encode (Value.list [ Value.list [ Value.int 1; Value.int 2 ] ]));
  let malformed s =
    match Store_codec.decode s with
    | _ -> false
    | exception Store_codec.Malformed _ -> true
  in
  check tbool "trailing garbage rejected" true
    (malformed (Store_codec.encode Value.unit ^ "x"));
  check tbool "truncation rejected" true
    (malformed (String.sub (Store_codec.encode (Value.int 5)) 0 4));
  check tbool "unknown tag byte rejected" true (malformed "\xee");
  (* Records carry a leading version byte; a future format must not be
     misread as the current one. *)
  let r =
    Store_codec.encode_record ~key:(Value.int 1) ~payload:(Value.int 2)
  in
  let k, p = Store_codec.decode_record r in
  check tbool "record round-trips" true
    (Value.equal k (Value.int 1) && Value.equal p (Value.int 2));
  let future = "\x63" ^ String.sub r 1 (String.length r - 1) in
  check tbool "version mismatch rejected" true
    (match Store_codec.decode_record future with
    | _ -> false
    | exception Store_codec.Malformed _ -> true)

(* (c) Journal crash-safety: append/scan round-trip, torn tails detected
   and reported (not deserialized), a bit-flipped payload skipped while
   later frames still scan, and a bad magic header refusing the file. *)
let journal () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal.flm" in
  check tbool "missing file scans as empty" true
    (match Journal.scan path with
    | Ok { Journal.records = []; corruptions = []; _ } -> true
    | _ -> false);
  let w = Journal.open_append path in
  Journal.append w "alpha";
  Journal.append w "beta";
  Journal.append w "gamma";
  Journal.close w;
  let payloads () =
    match Journal.scan path with
    | Ok { Journal.records; corruptions; _ } ->
      List.map snd records, corruptions
    | Error _ -> Alcotest.fail "journal should scan"
  in
  check tbool "append/scan round-trip" true
    (fst (payloads ()) = [ "alpha"; "beta"; "gamma" ]);
  (* Torn tail: chop mid-frame.  The intact prefix survives; the tail is a
     typed corruption, not garbage records. *)
  let whole = read_file path in
  truncate_file path (String.length whole - 3);
  let recs, corrs = payloads () in
  check tbool "torn tail: prefix survives" true (recs = [ "alpha"; "beta" ]);
  check tint "torn tail: one corruption" 1 (List.length corrs);
  check tbool "torn tail: typed Store_corrupt" true
    (match corrs with
    | [ Flm_error.Store_corrupt _ ] -> true
    | _ -> false);
  (* Appending over a torn tail must first truncate it (scan's valid_end):
     a frame written after unverifiable garbage would be unreachable. *)
  let valid_end =
    match Journal.scan path with
    | Ok r -> r.Journal.valid_end
    | Error _ -> Alcotest.fail "torn journal should still scan"
  in
  let w = Journal.open_append ~truncate_at:valid_end path in
  Journal.append w "delta";
  Journal.close w;
  let recs, corrs = payloads () in
  check tbool "append after tear heals the tail" true
    (recs = [ "alpha"; "beta"; "delta" ] && corrs = []);
  write_file path whole;
  (* Bit flip inside the middle payload: CRC catches it, the frame is
     skipped, and the final frame still scans. *)
  flip_byte path (8 + (8 + 5) + 8 + 1);
  let recs, corrs = payloads () in
  check tbool "bit flip: damaged frame skipped" true
    (recs = [ "alpha"; "gamma" ]);
  check tint "bit flip: one corruption" 1 (List.length corrs);
  (* Bad magic: nothing in the file can be trusted. *)
  write_file path ("XXXXXXXX" ^ String.sub whole 8 (String.length whole - 8));
  check tbool "bad magic is a hard error" true
    (match Journal.scan path with
    | Error (Flm_error.Store_corrupt _) -> true
    | _ -> false);
  (* rewrite: atomic replacement with exactly the given payloads. *)
  Journal.rewrite path [ "one"; "two" ];
  check tbool "rewrite replaces contents" true
    (fst (payloads ()) = [ "one"; "two" ])

(* (d) Store semantics: durability across reopen, last-writer-wins on
   duplicate keys, no-op puts, corruption skip-and-survive, verify, and gc
   compaction. *)
let store () =
  let dir = fresh_dir () in
  let key i = Value.tag "k" (Value.int i) in
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> Alcotest.fail "open_dir should succeed"
  in
  Store.put s ~key:(key 1) (Value.string "one");
  Store.put s ~key:(key 2) (Value.string "two");
  check tbool "find returns the payload" true
    (match Store.find s (key 1) with
    | Some v -> Value.equal v (Value.string "one")
    | None -> false);
  check tbool "mem on absent key" false (Store.mem s (key 9));
  (* An equal re-put must not grow the journal (resume without rewrites). *)
  let bytes_before = (Store.stat s).Store.bytes in
  Store.put s ~key:(key 1) (Value.string "one");
  check tint "equal re-put is a no-op" bytes_before (Store.stat s).Store.bytes;
  (* A differing re-put supersedes. *)
  Store.put s ~key:(key 2) (Value.string "TWO");
  Store.close s;
  (* Reopen: everything durable, duplicate key resolved last-writer-wins. *)
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> Alcotest.fail "reopen should succeed"
  in
  check tint "reopen sees live keys" 2 (Store.length s);
  check tbool "last writer wins across reopen" true
    (match Store.find s (key 2) with
    | Some v -> Value.equal v (Value.string "TWO")
    | None -> false);
  let st = Store.stat s in
  check tint "stat counts superseded frames" 3 st.Store.records;
  check tbool "verify is clean" true
    (match Store.verify dir with Ok (3, []) -> true | _ -> false);
  (* gc drops the superseded frame and the journal shrinks. *)
  let dropped = Store.gc s in
  check tint "gc drops the superseded frame" 1 dropped;
  check tint "gc keeps the live records" 2 (Store.length s);
  check tbool "gc'd journal verifies with fewer records" true
    (match Store.verify dir with Ok (2, []) -> true | _ -> false);
  (* The store keeps working after gc (writer reopens lazily). *)
  Store.put s ~key:(key 3) (Value.string "three");
  Store.close s;
  (* Corrupt one record on disk: the store still opens, reports a typed
     corruption, serves the intact records, and a fresh put of the damaged
     key repairs it. *)
  let path = Filename.concat dir "journal.flm" in
  (* Offset 17: one byte into the first frame's payload (8 magic + 8 frame
     header + 1), i.e. inside key 1's record. *)
  flip_byte path 17;
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> Alcotest.fail "a corrupt record must not refuse the store"
  in
  check tint "one corruption reported" 1 (List.length (Store.corruptions s));
  check tint "intact records survive" 2 (Store.length s);
  check tbool "damaged key reads as absent" false (Store.mem s (key 1));
  Store.put s ~key:(key 1) (Value.string "one");
  check tbool "repair by re-put" true (Store.mem s (key 1));
  (* gc rewrites a clean journal and clears the corruption reports. *)
  let (_ : int) = Store.gc s in
  check tint "gc clears corruption reports" 0
    (List.length (Store.corruptions s));
  check tbool "post-repair journal verifies clean" true
    (match Store.verify dir with Ok (3, []) -> true | _ -> false);
  (* iter is first-insertion order: the surviving scan records (2, 3), then
     key 1's repair. *)
  let order = ref [] in
  Store.iter s (fun ~key ~payload:_ ->
      order := Value.get_int (Value.untag "k" key) :: !order);
  check tbool "iter in first-insertion order" true (List.rev !order = [ 2; 3; 1 ]);
  Store.close s

(* (e) The engine's persistent tier: a swept grid checkpoints every cell, a
   fresh engine with [resume] serves them byte-identically without
   recomputing, and unparseable/missing records fall back to execution. *)
let engine_resume () =
  let dir = fresh_dir () in
  let store =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> Alcotest.fail "open_dir should succeed"
  in
  let cold = Engine.create ~jobs:1 ~store () in
  let reference = Engine.nf_boundary cold ~n_max:6 ~f_max:1 in
  let snap = Metrics.snapshot (Engine.metrics cold) in
  check tint "every cell journaled" (List.length reference)
    snap.Metrics.store_writes;
  check tint "cold run resumed nothing" 0 snap.Metrics.resumed;
  Store.close store;
  (* Resume into a fresh engine: all cells come from the store, and the
     verdicts are byte-identical under the canonical codec. *)
  let store =
    match Store.open_dir dir with
    | Ok s -> s
    | Error _ -> Alcotest.fail "reopen should succeed"
  in
  let warm = Engine.create ~jobs:1 ~store ~resume:true () in
  let resumed = Engine.nf_boundary warm ~n_max:6 ~f_max:1 in
  let snap = Metrics.snapshot (Engine.metrics warm) in
  check tint "warm run recomputed nothing" 0 snap.Metrics.recomputed;
  check tint "warm run resumed every cell" (List.length reference)
    snap.Metrics.resumed;
  let bytes cells =
    String.concat "|"
      (List.map
         (fun c ->
           match Job.verdict_to_value (Job.Cell c) with
           | Some v -> Store_codec.encode v
           | None -> Alcotest.fail "cells are storable")
         cells)
  in
  check tstring "resumed verdicts byte-identical" (bytes reference)
    (bytes resumed);
  (* Without [resume], the store is write-behind only. *)
  let no_resume = Engine.create ~jobs:1 ~store () in
  let again = Engine.nf_boundary no_resume ~n_max:6 ~f_max:1 in
  check tbool "no-resume engine recomputes" true (again = reference);
  check tint "no-resume engine resumed nothing" 0
    (Metrics.snapshot (Engine.metrics no_resume)).Metrics.resumed;
  Store.close store;
  (* Cert verdicts carry closures: never persisted, by construction. *)
  check tbool "certificates are not storable" true
    (Job.verdict_to_value
       (Job.run (Job.Certify { problem = Job.Ba; n = 3; f = 1 }))
    = None)

let suite =
  ( "store",
    [ Alcotest.test_case "crc32 vectors" `Quick crc32;
      Alcotest.test_case "codec canonicity" `Quick codec;
      Alcotest.test_case "journal crash safety" `Quick journal;
      Alcotest.test_case "store semantics" `Quick store;
      Alcotest.test_case "engine checkpoint/resume" `Quick engine_resume;
    ] )
