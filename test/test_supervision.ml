(* Worker supervision: the typed error taxonomy, cooperative deadlines,
   pool behavior under hostile jobs, and the engine's supervised batch path
   (timeouts, failures, deterministic ordering, jobs-count invariance). *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* (a) Taxonomy: retryability, guard conversions, the supervision
   classifier. *)
let taxonomy () =
  check tbool "worker crash is retryable" true
    (Flm_error.retryable (Flm_error.Worker_crashed { detail = "d" }));
  check tbool "failure is permanent" false
    (Flm_error.retryable (Flm_error.Job_failed { job = "j"; exn = "e" }));
  check tbool "timeout is permanent" false
    (Flm_error.retryable (Flm_error.Job_timeout { job = "j"; timeout_ms = 1 }));
  (match Flm_error.guard ~what:"w" (fun () -> invalid_arg "nope") with
  | Error (Flm_error.Invalid_input { what = "w"; detail = "nope" }) -> ()
  | _ -> Alcotest.fail "guard should map Invalid_argument to Invalid_input");
  (match Flm_error.guard ~what:"w" (fun () -> 7) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "guard should pass values through");
  let e = Flm_error.Axiom_violation { axiom = "locality"; detail = "d" } in
  (match Flm_error.guard ~what:"w" (fun () -> Flm_error.raise_error e) with
  | Error e' -> check tbool "guard unwraps Error payloads" true (Flm_error.equal e e')
  | Ok _ -> Alcotest.fail "guard should catch Error");
  (match Flm_error.classify ~job:"j" Out_of_memory with
  | Flm_error.Worker_crashed _ -> ()
  | _ -> Alcotest.fail "OOM should classify as Worker_crashed");
  match Flm_error.classify ~job:"j" (Failure "boom") with
  | Flm_error.Job_failed { job = "j"; _ } -> ()
  | _ -> Alcotest.fail "Failure should classify as Job_failed"

(* (b) Deadlines: no-op without a frame, typed timeout past expiry, nested
   frames keep the tighter deadline, frames restore on exit. *)
let deadlines () =
  Flm_error.Deadline.check ();
  check tbool "no ambient deadline" false (Flm_error.Deadline.active ());
  (match
     Flm_error.Deadline.with_deadline ~job:"t" ~timeout_ms:1 (fun () ->
         check tbool "deadline active inside" true (Flm_error.Deadline.active ());
         Unix.sleepf 0.01;
         Flm_error.Deadline.check ();
         `Unreachable)
   with
  | exception Flm_error.Error (Flm_error.Job_timeout { job = "t"; timeout_ms = 1 }) -> ()
  | _ -> Alcotest.fail "expired deadline should raise a typed timeout");
  check tbool "frame restored after raise" false (Flm_error.Deadline.active ());
  (* A generous outer frame does not loosen a tight inner one... *)
  (match
     Flm_error.Deadline.with_deadline ~job:"outer" ~timeout_ms:60_000 (fun () ->
         Flm_error.Deadline.with_deadline ~job:"inner" ~timeout_ms:1 (fun () ->
             Unix.sleepf 0.01;
             Flm_error.Deadline.check ();
             `Unreachable))
   with
  | exception Flm_error.Error (Flm_error.Job_timeout { job = "inner"; _ }) -> ()
  | _ -> Alcotest.fail "inner deadline should win");
  (* ...and a tight outer frame survives a generous inner request. *)
  match
    Flm_error.Deadline.with_deadline ~job:"tight" ~timeout_ms:1 (fun () ->
        Flm_error.Deadline.with_deadline ~job:"loose" ~timeout_ms:60_000
          (fun () ->
            Unix.sleepf 0.01;
            Flm_error.Deadline.check ();
            `Unreachable))
  with
  | exception Flm_error.Error (Flm_error.Job_timeout { job = "tight"; _ }) -> ()
  | _ -> Alcotest.fail "outer tight deadline should win"

(* (c) The pool under hostile tasks: per-item exception capture, lowest
   failing index re-raised, healthy items all complete, order stress. *)
let hostile_pool () =
  let pool = Pool.create ~jobs:4 ~chunk:2 ~oversubscribe:true () in
  let done_ = Array.make 12 false in
  (match
     Pool.map pool
       (fun i ->
         if i mod 5 = 3 then failwith (Printf.sprintf "boom %d" i);
         done_.(i) <- true;
         i)
       (Array.init 12 Fun.id)
   with
  | _ -> Alcotest.fail "a raising task should propagate"
  | exception Failure m ->
    check Alcotest.string "lowest failing index wins" "boom 3" m);
  check tbool "healthy tasks all ran despite failures" true
    (List.for_all (fun i -> done_.(i)) [ 0; 1; 2; 4; 5; 6; 7; 9; 10; 11 ]);
  (* Order stress: a parallel map equals the sequential reference. *)
  let big = Array.init 100 (fun i -> i) in
  check tbool "deterministic ordering at width 8" true
    (Pool.map (Pool.create ~jobs:8 ~oversubscribe:true ()) (fun i -> i * i) big
    = Array.map (fun i -> i * i) big)

let equal_outcome a b =
  match a, b with
  | Ok va, Ok vb -> Job.equal_verdict va vb
  | Error ea, Error eb -> Flm_error.equal ea eb
  | Ok _, Error _ | Error _, Ok _ -> false

(* (d) The supervised batch: poisoned and timing-out jobs yield typed
   errors in their slots, every other job completes, and the outcome list
   is identical whatever the jobs count. *)
let supervised_batch () =
  let chaos strategy trial =
    Job.Chaos_trial { family = "complete:4"; f = 1; seed = 5; strategy; trial }
  in
  let batch =
    [ Job.Nf_cell { n = 4; f = 1 };
      chaos "poison" 0;
      Job.Nf_cell { n = 3; f = 1 };
      chaos "stall:200" 1;
      chaos "drop:0.5" 2;
    ]
  in
  let run jobs =
    Engine.create ~jobs
      ~config:{ Engine.default_config with Engine.timeout_ms = Some 60 }
      ()
    |> fun eng -> eng, Engine.run_all_results eng batch
  in
  let eng1, seq = run 1 in
  let _, par = run 4 in
  check tint "all slots accounted for" 5 (List.length seq);
  check tbool "jobs=4 matches jobs=1 outcome for outcome" true
    (List.for_all2 equal_outcome seq par);
  (match seq with
  | [ Ok (Job.Cell _);
      Error (Flm_error.Job_failed _);
      Ok (Job.Cell _);
      Error (Flm_error.Job_timeout { timeout_ms = 60; _ });
      Ok (Job.Chaos _);
    ] -> ()
  | _ -> Alcotest.fail "unexpected supervised outcome shape");
  let snap = Metrics.snapshot (Engine.metrics eng1) in
  check tint "failures metered" 2 snap.Metrics.jobs_failed;
  check tint "timeouts metered" 1 snap.Metrics.jobs_timed_out;
  check tint "successes metered" 3 snap.Metrics.jobs_completed;
  (* Failures are never cached: a warm re-run re-executes the poisoned job
     and reproduces the same typed error. *)
  let warm = Engine.run_all_results eng1 batch in
  check tbool "warm re-run reproduces outcomes" true
    (List.for_all2 equal_outcome seq warm)

(* (e) Unsupervised vs supervised semantics on the same engine: run_job
   raises, run_job_result returns the payload. *)
let supervision_boundary () =
  let eng = Engine.create ~jobs:1 () in
  let poisoned =
    Job.Chaos_trial
      { family = "complete:4"; f = 1; seed = 5; strategy = "poison"; trial = 9 }
  in
  (match Engine.run_job eng poisoned with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unsupervised run should raise");
  (match Engine.run_job_result eng poisoned with
  | Error (Flm_error.Job_failed { exn; _ }) ->
    check tbool "failure payload names the poison step" true
      (String.length exn > 0)
  | _ -> Alcotest.fail "supervised run should return Job_failed");
  (* Config validation is typed too. *)
  match
    Engine.create ~config:{ Engine.default_config with Engine.retries = -1 } ()
  with
  | exception Flm_error.Error (Flm_error.Invalid_input _) -> ()
  | _ -> Alcotest.fail "negative retries should be rejected"

let suite =
  ( "supervision",
    [ Alcotest.test_case "error taxonomy" `Quick taxonomy;
      Alcotest.test_case "deadlines" `Quick deadlines;
      Alcotest.test_case "hostile pool" `Quick hostile_pool;
      Alcotest.test_case "supervised batch" `Quick supervised_batch;
      Alcotest.test_case "supervision boundary" `Quick supervision_boundary;
    ] )
